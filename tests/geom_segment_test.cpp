#include "geom/segment.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace imobif::geom {
namespace {

TEST(Segment, Length) {
  const Segment s{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
}

TEST(Segment, ProjectClampedInterior) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.project_clamped({5.0, 3.0}), 0.5);
  EXPECT_DOUBLE_EQ(s.project_clamped({2.5, -1.0}), 0.25);
}

TEST(Segment, ProjectClampedEnds) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.project_clamped({-5.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(s.project_clamped({15.0, 1.0}), 1.0);
}

TEST(Segment, DegenerateSegment) {
  const Segment s{{2.0, 2.0}, {2.0, 2.0}};
  EXPECT_DOUBLE_EQ(s.project_clamped({7.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(s.distance_to({7.0, 2.0}), 5.0);
}

TEST(Segment, DistanceTo) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.distance_to({5.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(s.distance_to({-3.0, 4.0}), 5.0);  // beyond endpoint a
  EXPECT_DOUBLE_EQ(s.distance_to({13.0, 4.0}), 5.0);  // beyond endpoint b
  EXPECT_DOUBLE_EQ(s.distance_to({4.0, 0.0}), 0.0);   // on the segment
}

TEST(StepTowards, ReachesCloseTarget) {
  const Vec2 from{0.0, 0.0};
  const Vec2 to{1.0, 1.0};
  EXPECT_EQ(step_towards(from, to, 10.0), to);
}

TEST(StepTowards, TruncatesToMaxStep) {
  const Vec2 from{0.0, 0.0};
  const Vec2 to{10.0, 0.0};
  const Vec2 stepped = step_towards(from, to, 4.0);
  EXPECT_NEAR(stepped.x, 4.0, 1e-12);
  EXPECT_NEAR(stepped.y, 0.0, 1e-12);
}

TEST(StepTowards, ZeroOrNegativeStepStays) {
  const Vec2 from{1.0, 2.0};
  EXPECT_EQ(step_towards(from, {9.0, 9.0}, 0.0), from);
  EXPECT_EQ(step_towards(from, {9.0, 9.0}, -1.0), from);
}

TEST(StepTowards, AtTargetStays) {
  const Vec2 p{3.0, 3.0};
  EXPECT_EQ(step_towards(p, p, 5.0), p);
}

TEST(MaxOfflineDistance, ComputesWorstCase) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  const std::vector<Vec2> pts{{1.0, 1.0}, {5.0, -4.0}, {9.0, 2.0}};
  EXPECT_DOUBLE_EQ(max_offline_distance(s, pts.data(), pts.size()), 4.0);
}

TEST(MaxOfflineDistance, EmptyIsZero) {
  const Segment s{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(max_offline_distance(s, nullptr, 0), 0.0);
}

TEST(PolylineLength, SumsSegments) {
  const std::vector<Vec2> pts{{0, 0}, {3, 4}, {3, 8}};
  EXPECT_DOUBLE_EQ(polyline_length(pts.data(), pts.size()), 9.0);
  EXPECT_DOUBLE_EQ(polyline_length(pts.data(), 1), 0.0);
  EXPECT_DOUBLE_EQ(polyline_length(nullptr, 0), 0.0);
}

TEST(Tortuosity, StraightPathIsOne) {
  const std::vector<Vec2> pts{{0, 0}, {5, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(tortuosity(pts.data(), pts.size()), 1.0);
}

TEST(Tortuosity, BentPathExceedsOne) {
  const std::vector<Vec2> pts{{0, 0}, {5, 5}, {10, 0}};
  EXPECT_NEAR(tortuosity(pts.data(), pts.size()),
              2.0 * std::sqrt(50.0) / 10.0, 1e-12);
}

TEST(Tortuosity, DegenerateCasesReportOne) {
  const std::vector<Vec2> loop{{0, 0}, {5, 5}, {0, 0}};
  EXPECT_DOUBLE_EQ(tortuosity(loop.data(), loop.size()), 1.0);
  EXPECT_DOUBLE_EQ(tortuosity(loop.data(), 1), 1.0);
}

// Property: tortuosity is always >= 1 (triangle inequality).
TEST(TortuosityProperty, AtLeastOne) {
  util::Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    std::vector<Vec2> pts;
    const auto n = 2 + rng.uniform_int(0, 6);
    for (std::uint64_t j = 0; j < n; ++j) {
      pts.push_back({rng.uniform(-100, 100), rng.uniform(-100, 100)});
    }
    EXPECT_GE(tortuosity(pts.data(), pts.size()), 1.0 - 1e-12);
  }
}

// Property: stepping never overshoots and strictly reduces the remaining
// distance (by exactly max_step when the target is farther than that).
TEST(StepTowardsProperty, MonotoneApproach) {
  util::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const Vec2 from{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Vec2 to{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const double step = rng.uniform(0.1, 50.0);
    const Vec2 next = step_towards(from, to, step);
    const double before = distance(from, to);
    const double after = distance(next, to);
    EXPECT_LE(after, before + 1e-9);
    if (before > step) {
      EXPECT_NEAR(before - after, step, 1e-9);
    } else {
      EXPECT_NEAR(after, 0.0, 1e-9);
    }
  }
}

// Property: the closest point on the segment is never farther than either
// endpoint.
TEST(SegmentProperty, ClosestPointOptimal) {
  util::Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const Segment s{{rng.uniform(-50, 50), rng.uniform(-50, 50)},
                    {rng.uniform(-50, 50), rng.uniform(-50, 50)}};
    const Vec2 p{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const double d = s.distance_to(p);
    EXPECT_LE(d, distance(p, s.a) + 1e-9);
    EXPECT_LE(d, distance(p, s.b) + 1e-9);
    // And no sampled interior point beats it.
    for (double t = 0.0; t <= 1.0; t += 0.1) {
      EXPECT_LE(d, distance(p, lerp(s.a, s.b, t)) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace imobif::geom
