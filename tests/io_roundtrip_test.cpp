// Round-trip proofs for every I/O boundary that carries doubles out of
// the typed core: util::Json (shortest-form decimal), the snapshot codec
// (IEEE-754 bit pattern), and the scenario config text. The units layer
// guarantees dimensions inside the process; these tests guarantee the
// values survive leaving and re-entering it bit for bit, which is what
// makes checkpoints resumable and result artifacts diffable.
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/scenario_io.hpp"
#include "snap/codec.hpp"
#include "util/config.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace {

using namespace imobif;

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

// from_chars, not stod: stod throws out_of_range on subnormals, which the
// shortest-form serializer legitimately produces.
double parse_exact(const std::string& text) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  EXPECT_TRUE(ec == std::errc{} && ptr == text.data() + text.size())
      << "unparsable: \"" << text << "\"";
  return value;
}

// Adversarial but finite doubles: signed zeros, denormals, extremes of
// the exponent range, classic non-terminating binary fractions, and
// domain-typical magnitudes.
std::vector<double> finite_battery() {
  return {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.1,
      0.1 + 0.2,
      1.0 / 3.0,
      3.141592653589793,
      5e-324,                                    // smallest denormal
      2.2250738585072014e-308,                   // DBL_MIN
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      6.02214076e23,
      1e-7,
      123456789.123456789,
      9007199254740992.0,                        // 2^53
      2000.0,
      1500.5,
  };
}

// splitmix64 drives a deterministic sweep over raw bit patterns.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(JsonRoundTrip, ShortestFormRecoversExactDouble) {
  for (double v : finite_battery()) {
    const std::string text = util::Json::number_to_string(v);
    const double back = parse_exact(text);
    EXPECT_EQ(bits_of(v), bits_of(back)) << "via \"" << text << "\"";
  }
}

TEST(JsonRoundTrip, RandomFiniteBitPatternsRecoverExactly) {
  std::uint64_t rng = 0x8f7d3c2a1b4e5f60ull;
  int tested = 0;
  while (tested < 10000) {
    const double v = std::bit_cast<double>(splitmix64(rng));
    if (!std::isfinite(v)) continue;
    ++tested;
    const double back = parse_exact(util::Json::number_to_string(v));
    ASSERT_EQ(bits_of(v), bits_of(back));
  }
}

TEST(JsonRoundTrip, NonFiniteSerializesAsNull) {
  EXPECT_EQ(util::Json::number_to_string(
                std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(util::Json::number_to_string(
                std::numeric_limits<double>::quiet_NaN()),
            "null");
}

TEST(SnapCodecRoundTrip, F64BatteryIsBitExact) {
  snap::StateWriter writer;
  auto battery = finite_battery();
  // The codec moves raw bit patterns, so non-finite values — NaN payload
  // included — must survive too (unlike JSON).
  battery.push_back(std::numeric_limits<double>::infinity());
  battery.push_back(std::bit_cast<double>(0x7ff800000000beefull));
  for (double v : battery) writer.f64(v);

  snap::StateReader reader(writer.data());
  for (double v : battery) {
    EXPECT_EQ(bits_of(v), bits_of(reader.f64()));
  }
  EXPECT_TRUE(reader.at_end());
}

TEST(SnapCodecRoundTrip, RandomBitPatternsAreBitExact) {
  std::uint64_t rng = 0x243f6a8885a308d3ull;
  snap::StateWriter writer;
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(std::bit_cast<double>(splitmix64(rng)));
    writer.f64(values.back());
  }
  snap::StateReader reader(writer.data());
  for (double v : values) {
    ASSERT_EQ(bits_of(v), bits_of(reader.f64()));
  }
  EXPECT_TRUE(reader.at_end());
}

// Fills every double-valued scenario field with an awkward value, pushes
// the params through format -> parse -> bind, and demands bit equality.
TEST(ScenarioConfigRoundTrip, AwkwardDoublesSurviveBitExact) {
  exp::ScenarioParams p;
  p.area_m = util::Meters{1000.0 / 3.0};
  p.comm_range_m = util::Meters{0.1 + 0.2};
  p.radio.a = 1e-7;
  p.radio.b = 1.3e-10;
  p.radio.alpha = 3.141592653589793;
  p.radio.rx_per_bit = 5e-324;
  p.mobility.k = 1.0 / 7.0;
  p.mobility.max_step_m = 2.2250738585072014e-308;
  p.initial_energy_j = util::Joules{123456789.123456789};
  p.energy_lo_j = util::Joules{800.0001};
  p.energy_hi_j = util::Joules{2399.9999};
  p.mean_flow_bits = util::Bits{512.25 * 1024.0 * 8.0};
  p.packet_bits = util::Bits{8192.0};
  p.rate_bps = util::BitsPerSecond{250000.5};
  p.length_estimate_factor = 1.0 / 3.0;
  p.hello_interval_s = util::Seconds{10.1};
  p.warmup_s = util::Seconds{1e-3};
  p.position_error_m = util::Meters{0.30000000000000004};
  p.alpha_prime = 0.7 / 3.0;
  p.line_bias_weight = 0.123456789012345678;
  p.recruit_margin = 1.05e-2;
  p.fault.loss_rate = 0.15000000000000002;
  p.fault.p_good_to_bad = 0.02;
  p.fault.p_bad_to_good = 0.4;
  p.fault.loss_good = 0.01;
  p.fault.loss_bad = 0.6;
  p.notify_retry_timeout_s = util::Seconds{2.5000000000000004};
  p.fault.crashes.push_back({7, 120.5, 30.25});
  p.fault.crashes.push_back({12, 1.0 / 3.0, -1.0});

  const std::string text = exp::to_config_string(p);
  exp::ScenarioParams q;  // defaults, then overridden by every key
  exp::apply_config(util::Config::from_string(text), q);

  EXPECT_EQ(bits_of(p.area_m.value()), bits_of(q.area_m.value()));
  EXPECT_EQ(bits_of(p.comm_range_m.value()), bits_of(q.comm_range_m.value()));
  EXPECT_EQ(bits_of(p.radio.a), bits_of(q.radio.a));
  EXPECT_EQ(bits_of(p.radio.b), bits_of(q.radio.b));
  EXPECT_EQ(bits_of(p.radio.alpha), bits_of(q.radio.alpha));
  EXPECT_EQ(bits_of(p.radio.rx_per_bit), bits_of(q.radio.rx_per_bit));
  EXPECT_EQ(bits_of(p.mobility.k), bits_of(q.mobility.k));
  EXPECT_EQ(bits_of(p.mobility.max_step_m), bits_of(q.mobility.max_step_m));
  EXPECT_EQ(bits_of(p.initial_energy_j.value()),
            bits_of(q.initial_energy_j.value()));
  EXPECT_EQ(bits_of(p.energy_lo_j.value()), bits_of(q.energy_lo_j.value()));
  EXPECT_EQ(bits_of(p.energy_hi_j.value()), bits_of(q.energy_hi_j.value()));
  EXPECT_EQ(bits_of(p.mean_flow_bits.value()),
            bits_of(q.mean_flow_bits.value()));
  EXPECT_EQ(bits_of(p.packet_bits.value()), bits_of(q.packet_bits.value()));
  EXPECT_EQ(bits_of(p.rate_bps.value()), bits_of(q.rate_bps.value()));
  EXPECT_EQ(bits_of(p.length_estimate_factor),
            bits_of(q.length_estimate_factor));
  EXPECT_EQ(bits_of(p.hello_interval_s.value()),
            bits_of(q.hello_interval_s.value()));
  EXPECT_EQ(bits_of(p.warmup_s.value()), bits_of(q.warmup_s.value()));
  EXPECT_EQ(bits_of(p.position_error_m.value()),
            bits_of(q.position_error_m.value()));
  EXPECT_EQ(bits_of(p.alpha_prime), bits_of(q.alpha_prime));
  EXPECT_EQ(bits_of(p.line_bias_weight), bits_of(q.line_bias_weight));
  EXPECT_EQ(bits_of(p.recruit_margin), bits_of(q.recruit_margin));
  EXPECT_EQ(bits_of(p.fault.loss_rate), bits_of(q.fault.loss_rate));
  EXPECT_EQ(bits_of(p.fault.p_good_to_bad), bits_of(q.fault.p_good_to_bad));
  EXPECT_EQ(bits_of(p.fault.p_bad_to_good), bits_of(q.fault.p_bad_to_good));
  EXPECT_EQ(bits_of(p.fault.loss_good), bits_of(q.fault.loss_good));
  EXPECT_EQ(bits_of(p.fault.loss_bad), bits_of(q.fault.loss_bad));
  EXPECT_EQ(bits_of(p.notify_retry_timeout_s.value()),
            bits_of(q.notify_retry_timeout_s.value()));
  ASSERT_EQ(p.fault.crashes.size(), q.fault.crashes.size());
  for (std::size_t i = 0; i < p.fault.crashes.size(); ++i) {
    EXPECT_EQ(p.fault.crashes[i].node, q.fault.crashes[i].node);
    EXPECT_EQ(bits_of(p.fault.crashes[i].at_s),
              bits_of(q.fault.crashes[i].at_s));
    EXPECT_EQ(bits_of(p.fault.crashes[i].duration_s),
              bits_of(q.fault.crashes[i].duration_s));
  }

  // Fixed point: the re-bound params format to the identical string, so a
  // second trip cannot drift either.
  EXPECT_EQ(text, exp::to_config_string(q));
}

TEST(ScenarioConfigRoundTrip, CrashScheduleFormatParseIsExact) {
  std::vector<net::FaultPlan::CrashEvent> crashes = {
      {0, 0.0, 0.0},
      {7, 120.5, 30.25},
      {12, 1.0 / 3.0, -1.0},
      {255, 86399.999999999, 0.30000000000000004},
  };
  const auto parsed = exp::parse_crashes(exp::format_crashes(crashes));
  ASSERT_EQ(parsed.size(), crashes.size());
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    EXPECT_EQ(parsed[i].node, crashes[i].node);
    EXPECT_EQ(bits_of(parsed[i].at_s), bits_of(crashes[i].at_s));
    EXPECT_EQ(bits_of(parsed[i].duration_s), bits_of(crashes[i].duration_s));
  }
}

}  // namespace
