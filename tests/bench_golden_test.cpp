// Golden regression gate for the figure benches: every fig5-8 binary, run
// at --instances 4, must reproduce its committed baseline byte for byte.
//
// The repo's house invariant is that refactors of the simulator core —
// grid-only neighbor discovery, SoA node state, batched event draining
// (DESIGN.md §12) — leave the paper artifacts bit-identical. The committed
// BENCH_fig*_i4.json files pin that contract at a budget small enough for
// every CI run; the full --instances 8 baselines stay the documentation
// artifacts (bench/baselines/README.md).
//
// wall_ms is the one machine-dependent line in a report; it is stripped
// from both sides before comparison, mirroring the CI bit-identity check.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace imobif {
namespace {

struct FigureBench {
  const char* name;    ///< for diagnostics
  const char* binary;  ///< injected by CMake
  const char* baseline;
};

const std::vector<FigureBench>& figure_benches() {
  static const std::vector<FigureBench> kBenches = {
      {"fig5_placement", IMOBIF_FIG5_BIN, "BENCH_fig5_i4.json"},
      {"fig6_energy", IMOBIF_FIG6_BIN, "BENCH_fig6_i4.json"},
      {"fig7_notifications", IMOBIF_FIG7_BIN, "BENCH_fig7_i4.json"},
      {"fig8_lifetime", IMOBIF_FIG8_BIN, "BENCH_fig8_i4.json"},
  };
  return kBenches;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Drops the "wall_ms": line — the one field documented as
/// machine-dependent — keeping everything else byte-exact.
std::string strip_wall_ms(const std::string& json) {
  std::istringstream in(json);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"wall_ms\"") != std::string::npos) continue;
    out << line << '\n';
  }
  return out.str();
}

TEST(BenchGolden, FigureReportsMatchCommittedBaselines) {
  const std::filesystem::path baseline_dir = IMOBIF_BASELINE_DIR;
  const std::filesystem::path scratch =
      std::filesystem::path(::testing::TempDir()) / "bench_golden";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  for (const FigureBench& bench : figure_benches()) {
    SCOPED_TRACE(bench.name);
    const std::filesystem::path out_json =
        scratch / (std::string(bench.name) + ".json");
    const std::string command = std::string(bench.binary) +
                                " --instances 4 --json " + out_json.string() +
                                " > /dev/null";
    ASSERT_EQ(std::system(command.c_str()), 0) << command;

    const std::string got = strip_wall_ms(slurp(out_json));
    const std::string want = strip_wall_ms(slurp(baseline_dir / bench.baseline));
    ASSERT_FALSE(want.empty());
    // Byte-for-byte (modulo the stripped timing line). On mismatch, point
    // at the first diverging line so the failure is actionable without
    // re-running anything.
    if (got != want) {
      std::istringstream got_in(got), want_in(want);
      std::string got_line, want_line;
      int line_no = 1;
      while (std::getline(got_in, got_line) &&
             std::getline(want_in, want_line)) {
        ASSERT_EQ(got_line, want_line)
            << bench.name << ": first divergence at line " << line_no;
        ++line_no;
      }
      FAIL() << bench.name << ": reports differ in length after line "
             << line_no;
    }
  }
  std::filesystem::remove_all(scratch);
}

}  // namespace
}  // namespace imobif
