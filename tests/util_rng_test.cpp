#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <stdexcept>
#include <vector>

namespace imobif::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values of [3,8] hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5u);
}

TEST(Rng, UniformIntThrowsOnBadRange) {
  Rng rng(15);
  EXPECT_THROW(rng.uniform_int(8, 3), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, ExponentialThrowsOnBadMean) {
  Rng rng(21);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // The child should differ from both a fresh parent-seeded generator and
  // the parent's continued stream.
  Rng fresh(23);
  int same_fresh = 0, same_parent = 0;
  for (int i = 0; i < 100; ++i) {
    const auto c = child();
    if (c == fresh()) ++same_fresh;
    if (c == parent()) ++same_parent;
  }
  EXPECT_LT(same_fresh, 3);
  EXPECT_LT(same_parent, 3);
}

TEST(Rng, ForkDeterministic) {
  Rng a(31), b(31);
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

// Mid-stream save/restore (the checkpoint contract, src/snap): capturing
// state() deep into a stream and seating it in a *different* generator
// reproduces the remaining stream exactly.
TEST(Rng, StateRoundTripsMidStream) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) (void)rng();
  const std::array<std::uint64_t, 4> saved = rng.state();

  std::vector<std::uint64_t> expected;
  expected.reserve(64);
  for (int i = 0; i < 64; ++i) expected.push_back(rng());

  Rng other(1);  // unrelated seed: set_state must fully overwrite it
  other.set_state(saved);
  for (const std::uint64_t value : expected) EXPECT_EQ(other(), value);
  EXPECT_EQ(other.state(), rng.state());
}

TEST(Rng, StateRoundTripSurvivesDoubleDraws) {
  Rng rng(7);
  for (int i = 0; i < 37; ++i) (void)rng.uniform01();
  Rng copy(12345);
  copy.set_state(rng.state());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(copy.uniform01(), rng.uniform01());
    EXPECT_EQ(copy.uniform_int(0, 1000), rng.uniform_int(0, 1000));
  }
}

TEST(Rng, SetStateRejectsAllZeroFixedPoint) {
  Rng rng(1);
  EXPECT_THROW(rng.set_state({0, 0, 0, 0}), std::invalid_argument);
  // A single non-zero word is a valid (if degenerate) xoshiro state.
  rng.set_state({0, 0, 1, 0});
}

// Property-style sweep: the empirical CDF of uniform01 is close to uniform
// across deciles for a spread of seeds.
class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformity, DecileCounts) {
  Rng rng(GetParam());
  std::vector<int> bins(10, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    ++bins[static_cast<std::size_t>(rng.uniform01() * 10.0)];
  }
  for (int count : bins) {
    EXPECT_NEAR(count, kN / 10, kN / 10 * 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformity,
                         ::testing::Values(1u, 42u, 1234567u, 0xdeadbeefu));

}  // namespace
}  // namespace imobif::util
