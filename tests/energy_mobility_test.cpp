#include "energy/mobility_model.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace imobif::energy {
namespace {

using util::Joules;
using util::Meters;

MobilityParams params(double k, double max_step) {
  MobilityParams p;
  p.k = k;
  p.max_step_m = max_step;
  return p;
}

TEST(MobilityParams, Validation) {
  EXPECT_THROW(params(-0.1, 1.0).validate(), std::invalid_argument);
  EXPECT_THROW(params(0.5, 0.0).validate(), std::invalid_argument);
  EXPECT_THROW(params(0.5, -1.0).validate(), std::invalid_argument);
  EXPECT_NO_THROW(params(0.0, 1.0).validate());  // free movement allowed
}

TEST(MobilityModel, MoveEnergyLinear) {
  const MobilityEnergyModel m(params(0.5, 1.0));
  EXPECT_DOUBLE_EQ(m.move_energy(Meters{0.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(m.move_energy(Meters{10.0}).value(), 5.0);
  EXPECT_DOUBLE_EQ(m.move_energy(Meters{100.0}).value(), 50.0);
}

TEST(MobilityModel, NegativeDistanceThrows) {
  const MobilityEnergyModel m(params(0.5, 1.0));
  EXPECT_THROW(m.move_energy(Meters{-1.0}), std::invalid_argument);
}

TEST(MobilityModel, RangeForEnergyInverts) {
  const MobilityEnergyModel m(params(0.5, 1.0));
  EXPECT_DOUBLE_EQ(m.range_for_energy(Joules{5.0}).value(), 10.0);
  EXPECT_DOUBLE_EQ(m.range_for_energy(Joules{0.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(m.range_for_energy(Joules{-3.0}).value(), 0.0);
}

TEST(MobilityModel, FreeMovementHasInfiniteRange) {
  const MobilityEnergyModel m(params(0.0, 1.0));
  EXPECT_EQ(m.range_for_energy(Joules{1.0}).value(),
            std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(m.move_energy(Meters{100.0}).value(), 0.0);
}

TEST(MobilityModel, MaxStepExposed) {
  const MobilityEnergyModel m(params(0.5, 2.5));
  EXPECT_DOUBLE_EQ(m.max_step().value(), 2.5);
}

// Parameterized over the paper's k values.
class MobilityK : public ::testing::TestWithParam<double> {};

TEST_P(MobilityK, EnergyProportionalToK) {
  const MobilityEnergyModel m(params(GetParam(), 1.0));
  EXPECT_DOUBLE_EQ(m.move_energy(Meters{42.0}).value(),
                   GetParam() * 42.0);
}

INSTANTIATE_TEST_SUITE_P(PaperKs, MobilityK,
                         ::testing::Values(0.1, 0.5, 1.0));

}  // namespace
}  // namespace imobif::energy
