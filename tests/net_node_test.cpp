#include "net/node.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace imobif::net {
namespace {

using test::default_flow;
using test::line_positions;
using test::make_harness;
using util::Bits;
using util::Joules;
using util::JoulesPerMeter;
using util::Meters;
using util::Seconds;

TEST(Node, RequiresCoreServices) {
  Node::Services empty;
  EXPECT_THROW(Node(0, {0, 0}, Joules{1.0}, empty), std::invalid_argument);
}

TEST(Node, HelloPopulatesNeighborTables) {
  auto h = make_harness(line_positions(3, 300.0));  // hops of 150 m
  h.net().start_hellos();
  h.net().simulator().run(sim::Time::from_seconds(15.0));
  const auto now = h.net().simulator().now();
  // Adjacent nodes (150 m < 180 m range) know each other; the ends do not.
  EXPECT_TRUE(h.net().node(1).neighbors().find(0, now).has_value());
  EXPECT_TRUE(h.net().node(1).neighbors().find(2, now).has_value());
  EXPECT_FALSE(h.net().node(0).neighbors().find(2, now).has_value());
}

TEST(Node, HelloCarriesPositionAndEnergy) {
  auto h = make_harness({{0, 0}, {100, 0}});
  h.net().node(0).battery().draw(Joules{500.0}, energy::DrawKind::kOther);
  h.net().node(0).send_hello_now();
  h.net().simulator().run();
  const auto info =
      h.net().node(1).neighbors().find(0, h.net().simulator().now());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->position, (geom::Vec2{0, 0}));
  EXPECT_DOUBLE_EQ(info->residual_energy.value(), 1500.0);
}

TEST(Node, HelloEnergyChargedWhenConfigured) {
  test::HarnessOptions opts;
  opts.charge_hello_energy = true;
  auto h = make_harness({{0, 0}, {100, 0}}, opts);
  const Joules before = h.net().node(0).battery().residual();
  h.net().node(0).send_hello_now();
  EXPECT_LT(h.net().node(0).battery().residual(), before);
}

TEST(Node, HelloEnergyFreeByDefaultInTests) {
  auto h = make_harness({{0, 0}, {100, 0}});
  const Joules before = h.net().node(0).battery().residual();
  h.net().node(0).send_hello_now();
  EXPECT_DOUBLE_EQ(h.net().node(0).battery().residual().value(),
                   before.value());
}

TEST(Node, StartStopHello) {
  auto h = make_harness({{0, 0}, {100, 0}});
  Node& n = h.net().node(0);
  n.start_hello();
  EXPECT_TRUE(n.hello_active());
  n.stop_hello();
  EXPECT_FALSE(n.hello_active());
  h.net().simulator().run(sim::Time::from_seconds(60.0));
  EXPECT_FALSE(h.net()
                   .node(1)
                   .neighbors()
                   .find(0, h.net().simulator().now())
                   .has_value());
}

TEST(Node, TransmitChargesDistanceDependentEnergy) {
  auto h = make_harness({{0, 0}, {100, 0}});
  Node& src = h.net().node(0);
  Packet pkt;
  pkt.type = PacketType::kHello;
  pkt.sender = SenderStamp{src.id(), src.position(), src.battery().residual()};
  pkt.link_dest = 1;
  pkt.size_bits = Bits{8192.0};
  const Joules before = src.battery().residual();
  EXPECT_TRUE(src.transmit(pkt, 1, {100, 0}));
  const Joules expected =
      src.radio().transmit_energy(Meters{100.0}, Bits{8192.0});
  EXPECT_NEAR((before - src.battery().residual()).value(), expected.value(),
              1e-12);
  EXPECT_NEAR(src.battery().consumed_transmit().value(),
              (before - src.battery().residual()).value(), 1e-9);
}

TEST(Node, TransmitFailsWhenEnergyInsufficient) {
  test::HarnessOptions opts;
  opts.initial_energy_j = util::Joules{1e-9};
  auto h = make_harness({{0, 0}, {100, 0}}, opts);
  Node& src = h.net().node(0);
  Packet pkt;
  pkt.type = PacketType::kHello;
  pkt.link_dest = 1;
  pkt.size_bits = Bits{8192.0};
  EXPECT_FALSE(src.transmit(pkt, 1, {100, 0}));
  EXPECT_TRUE(src.battery().depleted());
  EXPECT_FALSE(src.alive());
}

TEST(Node, MoveTowardsBoundedStep) {
  auto h = make_harness({{0, 0}, {100, 0}});
  Node& n = h.net().node(0);
  const Meters moved =
      n.move_towards({10.0, 0.0}, Meters{1.0}, JoulesPerMeter{0.5});
  EXPECT_DOUBLE_EQ(moved.value(), 1.0);
  EXPECT_EQ(n.position(), (geom::Vec2{1.0, 0.0}));
  EXPECT_DOUBLE_EQ(n.battery().consumed_move().value(), 0.5);
  EXPECT_DOUBLE_EQ(n.total_moved().value(), 1.0);
}

TEST(Node, MoveTowardsReachesNearTarget) {
  auto h = make_harness({{0, 0}, {100, 0}});
  Node& n = h.net().node(0);
  const Meters moved =
      n.move_towards({0.4, 0.0}, Meters{1.0}, JoulesPerMeter{0.5});
  EXPECT_NEAR(moved.value(), 0.4, 1e-12);
  EXPECT_NEAR(n.position().x, 0.4, 1e-12);
}

TEST(Node, MoveTruncatedByBattery) {
  test::HarnessOptions opts;
  opts.initial_energy_j = util::Joules{0.3};
  auto h = make_harness({{0, 0}, {100, 0}}, opts);
  Node& n = h.net().node(0);
  const Meters moved =
      n.move_towards({10.0, 0.0}, Meters{1.0}, JoulesPerMeter{0.5});
  EXPECT_NEAR(moved.value(), 0.6, 1e-9);
  EXPECT_TRUE(n.battery().depleted());
  // Dead nodes do not move further.
  EXPECT_DOUBLE_EQ(
      n.move_towards({10.0, 0.0}, Meters{1.0}, JoulesPerMeter{0.5}).value(),
      0.0);
}

TEST(Node, FreeMovementWithZeroCost) {
  auto h = make_harness({{0, 0}, {100, 0}});
  Node& n = h.net().node(0);
  const Joules before = n.battery().residual();
  n.move_towards({1.0, 0.0}, Meters{2.0}, JoulesPerMeter{0.0});
  EXPECT_DOUBLE_EQ(n.battery().residual().value(), before.value());
  EXPECT_EQ(n.position(), (geom::Vec2{1.0, 0.0}));
}

TEST(Node, LookupPrefersNeighborTable) {
  auto h = make_harness({{0, 0}, {100, 0}});
  Node& n = h.net().node(0);
  n.neighbors().upsert(1, {90, 0}, Joules{7.0}, h.net().simulator().now());
  const NeighborInfo info = n.lookup(1);
  EXPECT_EQ(info.position, (geom::Vec2{90, 0}));  // stale table value wins
  EXPECT_DOUBLE_EQ(info.residual_energy.value(), 7.0);
}

TEST(Node, LookupFallsBackToOracle) {
  auto h = make_harness({{0, 0}, {100, 0}});
  const NeighborInfo info = h.net().node(0).lookup(1);
  EXPECT_EQ(info.position, (geom::Vec2{100, 0}));  // ground truth
  EXPECT_DOUBLE_EQ(info.residual_energy.value(), 0.0);  // energy unknown
}

TEST(Node, DeadNodeDropsReceivedPackets) {
  auto h = make_harness({{0, 0}, {100, 0}});
  Node& dead = h.net().node(1);
  dead.battery().draw(Joules{1e9}, energy::DrawKind::kOther);
  Packet pkt;
  pkt.type = PacketType::kHello;
  pkt.sender = SenderStamp{0, {0, 0}, Joules{1.0}};
  dead.handle_receive(pkt);
  EXPECT_EQ(dead.neighbors().size(), 0u);
}

TEST(Node, DataPipelineDeliversAlongLine) {
  auto h = make_harness(line_positions(4, 450.0));  // hops of 150 m
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 3));
  h.net().run_flows(Seconds{60.0});
  const auto& prog = h.net().progress(1);
  EXPECT_TRUE(prog.completed);
  EXPECT_DOUBLE_EQ(prog.delivered_bits.value(), 8192.0 * 3);
  // Relays pinned prev/next along the line.
  const FlowEntry* relay = h.net().node(1).flows().find(1);
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->prev, 0u);
  EXPECT_EQ(relay->next, 2u);
}

TEST(Node, HopCountIncrementsPerRelay) {
  auto h = make_harness(line_positions(4, 450.0));
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0));
  h.net().run_flows(Seconds{60.0});
  // 3 hops: relays at 1 and 2 each increment once.
  EXPECT_TRUE(h.net().progress(1).completed);
}

}  // namespace
}  // namespace imobif::net
