// Relay recruitment (extension E2): splitting an expensive hop by
// inviting an idle neighbor into the flow path.
#include <gtest/gtest.h>

#include "exp/experiments.hpp"
#include "test_helpers.hpp"

namespace imobif::core {
namespace {

using test::default_flow;
using test::make_harness;

// A long 2-hop chain 0 -> 1 -> 2 with idle node 3 sitting right at the
// midpoint of the expensive 1 -> 2 hop (and node 4 far away).
std::vector<geom::Vec2> chain_with_idle() {
  return {{0, 0}, {170, 0}, {340, 0}, {255, 8}, {170, 500}};
}

net::FlowSpec long_flow(double packets) {
  net::FlowSpec spec;
  spec.id = 1;
  spec.source = 0;
  spec.destination = 2;
  spec.length_bits = util::Bits{8192.0 * packets};
  spec.strategy = net::StrategyId::kMinTotalEnergy;
  return spec;
}

TEST(Recruitment, DisabledByDefault) {
  auto h = make_harness(chain_with_idle());
  EXPECT_FALSE(h.policy->recruitment_enabled());
  h.net().warmup(util::Seconds{25.0});
  h.net().start_flow(long_flow(100));
  h.net().run_flows(util::Seconds{150.0});
  EXPECT_EQ(h.policy->recruits_initiated(), 0u);
  EXPECT_TRUE(h.net().progress(1).completed);
}

TEST(Recruitment, ParameterValidation) {
  auto h = make_harness(chain_with_idle());
  EXPECT_THROW(h.policy->enable_recruitment(0.0), std::invalid_argument);
  EXPECT_THROW(h.policy->enable_recruitment(1.0, 0), std::invalid_argument);
  h.policy->enable_recruitment(1.2, 16);
  EXPECT_TRUE(h.policy->recruitment_enabled());
}

TEST(Recruitment, SplitsExpensiveHopWhenItPays) {
  auto h = make_harness(chain_with_idle());
  h.policy->enable_recruitment(1.2, 16);
  h.net().warmup(util::Seconds{25.0});
  h.net().start_flow(long_flow(2000));
  h.net().run_flows(util::Seconds{2500.0});

  ASSERT_TRUE(h.net().progress(1).completed);
  EXPECT_GE(h.policy->recruits_initiated(), 1u);
  EXPECT_GE(h.net().progress(1).recruits, 1u);
  // Relay 1 now forwards through the recruited node 3.
  EXPECT_EQ(h.net().node(1).flows().find(1)->next, 3u);
  const net::FlowEntry* recruit_entry = h.net().node(3).flows().find(1);
  ASSERT_NE(recruit_entry, nullptr);
  EXPECT_EQ(recruit_entry->prev, 1u);
  EXPECT_EQ(recruit_entry->next, 2u);
  EXPECT_GT(recruit_entry->packets_relayed, 0u);
}

TEST(Recruitment, RecruitmentSavesEnergyOnLongFlows) {
  auto base = make_harness(chain_with_idle());
  base.net().warmup(util::Seconds{25.0});
  base.net().start_flow(long_flow(2000));
  base.net().run_flows(util::Seconds{2500.0});
  ASSERT_TRUE(base.net().progress(1).completed);

  auto rec = make_harness(chain_with_idle());
  rec.policy->enable_recruitment(1.2, 16);
  rec.net().warmup(util::Seconds{25.0});
  rec.net().start_flow(long_flow(2000));
  rec.net().run_flows(util::Seconds{2500.0});
  ASSERT_TRUE(rec.net().progress(1).completed);

  EXPECT_LT(rec.net().total_consumed_energy(),
            base.net().total_consumed_energy());
}

TEST(Recruitment, ShortFlowsDoNotRecruit) {
  // Splitting a hop saves per-bit; a 4-packet flow cannot amortize even
  // the recruit's bookkeeping, so the net-gain check must reject it.
  auto h = make_harness(chain_with_idle());
  h.policy->enable_recruitment(1.2, 16);
  h.net().warmup(util::Seconds{25.0});
  h.net().start_flow(long_flow(4));
  h.net().run_flows(util::Seconds{60.0});
  ASSERT_TRUE(h.net().progress(1).completed);
  // With a = 1e-7 and b = 5e-10 the per-bit saving of splitting a 170 m
  // hop is positive, but the relocation margin makes tiny flows
  // unattractive when the idle node sits off the midpoint. Either way the
  // recruit cap holds:
  EXPECT_LE(h.policy->recruits_initiated(), 1u);
}

TEST(Recruitment, WorksThroughScenarioKnob) {
  exp::ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.mean_flow_bits = util::Bits{2.0 * 1024.0 * 1024.0 * 8.0};
  p.recruit_margin = 1.2;
  p.seed = 8;
  const auto points = exp::run_comparison(p, 3);
  for (const auto& pt : points) {
    EXPECT_TRUE(pt.informed.completed);
    // Safety: recruitment never makes iMobif materially worse.
    EXPECT_LE(pt.energy_ratio_informed(), 1.02);
  }
}

}  // namespace
}  // namespace imobif::core
