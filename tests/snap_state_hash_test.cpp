// Field sensitivity of snap::state_hash (DESIGN.md §9/§15).
//
// The checkpoint-exhaustiveness gate (tools/imobif_snaplint.py) proves
// statically that every mutable field is persisted or annotated; this test
// proves the complementary dynamic property: the digest actually *depends*
// on each persisted dynamic section. A mid-flight run is perturbed through
// the same restore accessors the snapshot codec uses — network progress,
// medium counters, node position/battery, policy counters, mobility rng
// and model state, traffic generator state — and every perturbation must
// move the hash. Meta-only state (the sampler RNG) must NOT move it, since
// replay bisection compares hashes across runs that intentionally differ
// in a meta parameter.
#include "snap/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/instance.hpp"
#include "mob/params.hpp"
#include "traffic/generator.hpp"
#include "traffic/params.hpp"
#include "util/rng.hpp"

namespace imobif::snap {
namespace {

/// Model-zoo scenario: background motion and shaped traffic so the mob
/// and traffic sections carry real state.
exp::ScenarioParams zoo_params() {
  exp::ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.mean_flow_bits = util::Bits{60.0 * 1024.0 * 8.0};
  p.seed = 42;
  p.mob.model = mob::ModelId::kRandomWaypoint;
  p.mob.update_s = util::Seconds{1.0};
  p.mob.speed_min = util::MetersPerSecond{0.5};
  p.mob.speed_max = util::MetersPerSecond{2.0};
  p.mob.pause_s = util::Seconds{5.0};
  p.traffic.model = traffic::ModelId::kOnOff;
  return p;
}

std::unique_ptr<exp::InstanceRun> midflight_run() {
  const exp::ScenarioParams params = zoo_params();
  util::Rng rng(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, rng);
  auto run = exp::InstanceRun::create(instance, params,
                                      core::MobilityMode::kInformed, {});
  run->set_sampler_rng_state(rng.state());
  run->advance(1500);
  return run;
}

TEST(SnapStateHashTest, MetaOnlyChangeLeavesDigestUntouched) {
  auto run = midflight_run();
  const std::uint64_t before = state_hash(*run);
  const std::string bytes_before = encode(*run);

  run->set_sampler_rng_state({1u, 2u, 3u, 4u});

  // The snapshot bytes change (the sampler RNG lives in "meta") but the
  // dynamic-state digest must not.
  EXPECT_NE(encode(*run), bytes_before);
  EXPECT_EQ(state_hash(*run), before);
}

TEST(SnapStateHashTest, EveryDynamicSectionMovesTheDigest) {
  auto run = midflight_run();
  net::Network& network = run->network();
  std::uint64_t last = state_hash(*run);

  auto expect_moved = [&](const char* section) {
    const std::uint64_t now = state_hash(*run);
    EXPECT_NE(now, last) << "state_hash insensitive to " << section;
    last = now;
  };

  // network section: last-progress timestamp.
  network.restore_last_progress(network.last_progress() +
                                sim::Time::from_ticks(1));
  expect_moved("network last-progress time");

  // network section: scalar drop counter.
  network.restore_total_data_drops(network.total_data_drops() + 7);
  expect_moved("network drop counter");

  // medium section: delivery counters.
  net::Medium::Counters counters = network.medium().counters();
  counters.unicasts += 1;
  network.medium().restore_counters(counters);
  expect_moved("medium counters");

  // nodes section: a node position.
  net::Node& node = network.node(0);
  node.set_position(node.position() + geom::Vec2{1.0, 0.0});
  expect_moved("node position");

  // nodes section: battery split.
  energy::Battery& battery = node.battery();
  battery.restore(battery.initial(),
                  battery.residual() - util::Joules{1e-3},
                  battery.consumed_transmit() + util::Joules{1e-3},
                  battery.consumed_move(), battery.consumed_other());
  expect_moved("node battery");

  // policy section: movement counters.
  core::ImobifPolicy& policy = run->policy();
  policy.restore_counters(policy.movements_applied() + 1,
                          policy.total_distance_moved(),
                          policy.recruits_initiated());
  expect_moved("policy counters");

  // mob section: the mobility model's RNG and its state vector.
  ASSERT_NE(run->motion(), nullptr);
  mob::MobilityModel& model = run->motion()->model();
  model.rng().reseed(999);
  expect_moved("mobility rng");

  std::vector<double> state = model.state();
  ASSERT_FALSE(state.empty());
  state.front() += 0.5;
  model.restore_state(state);
  expect_moved("mobility model state");

  // traffic section: a generator's (rng, state) pair.
  const auto& generators = network.traffic_generators();
  ASSERT_FALSE(generators.empty());
  const auto& [flow_id, generator] = *generators.begin();
  util::Rng reseeded(12345);
  network.restore_traffic_state(flow_id, reseeded.state(),
                                generator->state());
  expect_moved("traffic generator state");

  // sim/events sections: executing one more event advances the clock.
  run->advance(1);
  expect_moved("simulator clock after one event");
}

}  // namespace
}  // namespace imobif::snap
