// Checkpoint/restore equivalence for the mobility & traffic model zoo
// (DESIGN.md §14): a run with background motion and shaped traffic
// snapshotted at an arbitrary event boundary must hash equal, re-encode
// byte-identically, and finish with the reference result — and a
// trace-driven comparison sweep resumed from checkpoints must produce a
// byte-identical SweepReport.
#include "snap/snapshot.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exp/instance.hpp"
#include "mob/params.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/report.hpp"
#include "runtime/sweep.hpp"
#include "snap/result_io.hpp"
#include "traffic/params.hpp"
#include "util/rng.hpp"

namespace imobif::snap {
namespace {

/// Writes a small waypoint schedule covering the first ten nodes and
/// returns its path (the trace_file embedded in scenario text).
std::string demo_trace_path() {
  const std::string path =
      ::testing::TempDir() + "imobif_snap_mobility.trace";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  for (int node = 0; node < 10; ++node) {
    const double x0 = 50.0 + 70.0 * node;
    out << node << " 0 " << x0 << " 100\n"
        << node << " 120 " << (750.0 - 60.0 * node) << " 650\n"
        << node << " 300 " << x0 << " 400\n";
  }
  return path;
}

exp::ScenarioParams zoo_params() {
  exp::ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.mean_flow_bits = util::Bits{60.0 * 1024.0 * 8.0};
  p.seed = 42;
  p.mob.model = mob::ModelId::kRandomWaypoint;
  p.mob.update_s = util::Seconds{1.0};
  p.mob.speed_min = util::MetersPerSecond{0.5};
  p.mob.speed_max = util::MetersPerSecond{2.0};
  p.mob.pause_s = util::Seconds{5.0};
  p.traffic.model = traffic::ModelId::kOnOff;
  return p;
}

exp::ScenarioParams trace_params() {
  exp::ScenarioParams p = zoo_params();
  p.seed = 97;
  p.mob.model = mob::ModelId::kTrace;
  p.mob.trace_file = demo_trace_path();
  p.traffic.model = traffic::ModelId::kPareto;
  return p;
}

std::string result_json(exp::InstanceRun& run) {
  return result_to_json(run.result()).dump(2);
}

/// Mirror of snap_checkpoint_test's equivalence harness: uninterrupted
/// reference run vs a run snapshotted at `boundary_events` and restored
/// into a fresh object graph.
void expect_checkpoint_equivalence(const exp::ScenarioParams& params,
                                   std::size_t boundary_events) {
  SCOPED_TRACE("boundary_events=" + std::to_string(boundary_events));
  util::Rng rng(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, rng);

  auto reference = exp::InstanceRun::create(
      instance, params, core::MobilityMode::kInformed, {});
  EXPECT_TRUE(reference->advance());
  const std::string expected = result_json(*reference);

  util::Rng rng2(params.seed);
  const exp::FlowInstance instance2 = exp::sample_instance(params, rng2);
  auto original = exp::InstanceRun::create(
      instance2, params, core::MobilityMode::kInformed, {});
  original->set_sampler_rng_state(rng2.state());
  original->advance(boundary_events);

  const std::uint64_t hash_before = state_hash(*original);
  const std::string bytes = encode(*original);

  auto restored = restore(bytes);
  EXPECT_EQ(state_hash(*restored), hash_before);
  EXPECT_EQ(encode(*restored), bytes);

  EXPECT_TRUE(restored->advance());
  EXPECT_EQ(result_json(*restored), expected);
  EXPECT_TRUE(original->advance());
  EXPECT_EQ(result_json(*original), expected);
}

TEST(SnapMobilityCheckpoint, WaypointOnOffScenarioEquivalent) {
  // Boundaries straddle motion ticks: with update_s = 1 s the queue
  // carries a kMobTick roughly every ~40 events at this density.
  for (const std::size_t boundary :
       {std::size_t{1}, std::size_t{487}, std::size_t{5000}}) {
    expect_checkpoint_equivalence(zoo_params(), boundary);
  }
}

TEST(SnapMobilityCheckpoint, TraceParetoScenarioEquivalent) {
  for (const std::size_t boundary : {std::size_t{311}, std::size_t{4000}}) {
    expect_checkpoint_equivalence(trace_params(), boundary);
  }
}

TEST(SnapMobilityCheckpoint, GaussMarkovAndGroupEquivalent) {
  exp::ScenarioParams p = zoo_params();
  p.mob.model = mob::ModelId::kGaussMarkov;
  expect_checkpoint_equivalence(p, 1500);
  p.mob.model = mob::ModelId::kGroup;
  p.mob.group_count = 4;
  expect_checkpoint_equivalence(p, 1500);
}

TEST(SnapMobilityCheckpoint, MotionStateRejectedWithoutAModel) {
  // A snapshot carrying mob/traffic state must not restore into a
  // scenario whose params lost the model (config drift protection).
  exp::ScenarioParams params = zoo_params();
  util::Rng rng(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, rng);
  auto run = exp::InstanceRun::create(instance, params,
                                      core::MobilityMode::kInformed, {});
  run->advance(500);
  const std::string json = debug_json(*run);
  EXPECT_NE(json.find("\"section\": \"mob\""), std::string::npos);
  EXPECT_NE(json.find("\"section\": \"traffic\""), std::string::npos);
}

// The trace-driven sweep acceptance check: a checkpointed + resumed
// comparison sweep reports byte-identically to a plain one.
TEST(SnapMobilityCheckpoint, TraceDrivenSweepReportBitIdenticalOnResume) {
  const exp::ScenarioParams params = trace_params();

  const auto report_from = [](const std::vector<exp::ComparisonPoint>& pts) {
    runtime::SweepReport report("snap_mobility_resume");
    std::vector<double> unaware;
    std::vector<double> informed;
    for (const auto& pt : pts) {
      unaware.push_back(pt.energy_ratio_cost_unaware());
      informed.push_back(pt.energy_ratio_informed());
    }
    report.add_series("ratio_unaware", unaware);
    report.add_series("ratio_informed", informed);
    return report.to_string();
  };

  const std::vector<exp::ComparisonPoint> plain =
      runtime::run_comparison_parallel(params, 2);

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "snap_mob_resume";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  runtime::CheckpointOptions checkpoint;
  checkpoint.dir = dir.string();
  checkpoint.every_sim_s = 15.0;
  const std::vector<exp::ComparisonPoint> checked =
      runtime::run_comparison_parallel(params, 2, {}, 1, checkpoint);

  // Resume from the .result files at a different worker count.
  checkpoint.resume = true;
  const std::vector<exp::ComparisonPoint> resumed =
      runtime::run_comparison_parallel(params, 2, {}, 4, checkpoint);

  const std::string expected = report_from(plain);
  EXPECT_EQ(report_from(checked), expected);
  EXPECT_EQ(report_from(resumed), expected);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace imobif::snap
