// Scale smoke: the 10^4-node scenario the production-scale charter
// (DESIGN.md §12) treats as its everyday regression point.
//
// Three properties, one sampled topology:
//   1. Wall budget — sampling, construction, warmup, and a six-figure event
//      drain all complete in seconds, not minutes (the grid-only discovery
//      path keeps per-event work O(neighborhood), never O(N)).
//   2. snap::state_hash is identical whether the run advances inline
//      ("--jobs 1") or on a 4-worker ThreadPool ("--jobs 4") — execution
//      context must never leak into simulation state.
//   3. A checkpoint/resume cycle mid-drain hashes equal to the
//      uninterrupted run after the same total event count.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "exp/instance.hpp"
#include "exp/instance_run.hpp"
#include "exp/scenario.hpp"
#include "runtime/thread_pool.hpp"
#include "snap/snapshot.hpp"
#include "util/rng.hpp"

namespace imobif {
namespace {

constexpr std::size_t kNodes = 10000;
constexpr std::size_t kDrainEvents = 200000;
constexpr std::size_t kResumeEvents = 50000;

exp::ScenarioParams scale_params() {
  exp::ScenarioParams p;
  p.node_count = kNodes;
  // Constant density: the paper's 100 nodes per 1000 m square, area scaled
  // with sqrt(N) — same rule as bench/scale_sweep.
  p.area_m = util::Meters{10000.0};
  p.seed = 20050610;
  return p;
}

std::unique_ptr<exp::InstanceRun> advanced_run(const exp::FlowInstance& inst,
                                               const exp::ScenarioParams& p,
                                               std::size_t events) {
  auto run = exp::InstanceRun::create(inst, p, core::MobilityMode::kInformed);
  run->advance(events);
  return run;
}

TEST(ScaleSmoke, TenThousandNodesUnderWallBudget) {
  const auto start = std::chrono::steady_clock::now();

  const exp::ScenarioParams params = scale_params();
  util::Rng rng(params.seed);
  const exp::FlowInstance inst = exp::sample_instance(params, rng);
  ASSERT_EQ(inst.positions.size(), kNodes);
  ASSERT_GE(inst.initial_path.size(), params.min_hops + 1);

  // "--jobs 1": advance inline on this thread.
  auto inline_run = advanced_run(inst, params, kDrainEvents);
  const std::uint64_t inline_hash = snap::state_hash(*inline_run);

  // "--jobs 4": the identical run advanced on a 4-worker pool, with
  // sibling tasks alive so the pool is genuinely multi-threaded.
  runtime::ThreadPool pool(4);
  std::vector<std::future<int>> noise;
  for (int i = 0; i < 3; ++i) {
    noise.push_back(pool.submit([i] { return i; }));
  }
  auto pooled = pool.submit([&] {
    auto run = advanced_run(inst, params, kDrainEvents);
    return snap::state_hash(*run);
  });
  for (auto& f : noise) f.get();
  EXPECT_EQ(pooled.get(), inline_hash)
      << "simulation state depends on the executing thread context";

  // Checkpoint/resume cycle: snapshot the inline run mid-drain, restore,
  // drain both for the same additional budget, compare hashes.
  const std::string bytes = snap::encode(*inline_run);
  auto restored = snap::restore(bytes);
  EXPECT_EQ(snap::state_hash(*restored), inline_hash);
  inline_run->advance(kResumeEvents);
  restored->advance(kResumeEvents);
  EXPECT_EQ(restored->network().simulator().executed_events(),
            inline_run->network().simulator().executed_events());
  EXPECT_EQ(snap::state_hash(*restored), snap::state_hash(*inline_run));

  // Wall budget: everything above — two full 1e4-node builds, ~half a
  // million events, a snapshot round-trip — in well under two minutes
  // even on a loaded single-core CI runner.
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            120)
      << "scale smoke blew its wall budget";
}

}  // namespace
}  // namespace imobif
