// Frame codec: round trips, incremental delivery, and the malformed-input
// taxonomy (truncated, oversized, garbage, foreign protocol version).
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "svc/errors.hpp"
#include "svc/frame.hpp"

namespace {

using namespace imobif;

std::string encode(svc::MsgType type, const std::string& payload) {
  svc::Frame frame;
  frame.type = type;
  frame.payload = payload;
  return svc::encode_frame(frame);
}

svc::ErrCode decode_error(const std::string& bytes) {
  svc::FrameDecoder decoder;
  decoder.feed(bytes);
  try {
    (void)decoder.next();
  } catch (const svc::SvcError& e) {
    return e.code();
  }
  ADD_FAILURE() << "decoder accepted malformed input";
  return svc::ErrCode::kRemote;
}

TEST(SvcFrame, RoundTripsPayload) {
  const std::string payload("hello\0world", 11);  // embedded NUL survives
  const std::string wire = encode(svc::MsgType::kSubmit, payload);
  EXPECT_EQ(wire.size(), svc::kFrameHeaderBytes + payload.size());

  svc::FrameDecoder decoder;
  decoder.feed(wire);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, svc::MsgType::kSubmit);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(SvcFrame, RoundTripsEmptyPayload) {
  svc::FrameDecoder decoder;
  decoder.feed(encode(svc::MsgType::kHeartbeat, ""));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, svc::MsgType::kHeartbeat);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(SvcFrame, ReassemblesByteAtATimeDelivery) {
  const std::string wire = encode(svc::MsgType::kProgress, "0123456789");
  svc::FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(std::string_view(&wire[i], 1));
    EXPECT_FALSE(decoder.next().has_value()) << "frame complete early at " << i;
  }
  decoder.feed(std::string_view(&wire[wire.size() - 1], 1));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "0123456789");
}

TEST(SvcFrame, DrainsBackToBackFrames) {
  svc::FrameDecoder decoder;
  decoder.feed(encode(svc::MsgType::kHello, "a") +
               encode(svc::MsgType::kHelloAck, "bb") +
               encode(svc::MsgType::kShutdown, ""));
  EXPECT_EQ(decoder.next()->type, svc::MsgType::kHello);
  EXPECT_EQ(decoder.next()->payload, "bb");
  EXPECT_EQ(decoder.next()->type, svc::MsgType::kShutdown);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(SvcFrame, TruncatedFrameIsNotAnError) {
  const std::string wire = encode(svc::MsgType::kSubmit, "payload");
  svc::FrameDecoder decoder;
  decoder.feed(wire.substr(0, wire.size() - 1));
  EXPECT_FALSE(decoder.next().has_value());  // incomplete, not malformed
  EXPECT_EQ(decoder.buffered(), wire.size() - 1);
}

TEST(SvcFrame, RejectsBadMagic) {
  std::string wire = encode(svc::MsgType::kHello, "x");
  wire[0] = 'X';
  EXPECT_EQ(decode_error(wire), svc::ErrCode::kBadMagic);
}

TEST(SvcFrame, RejectsForeignProtocolVersion) {
  std::string wire = encode(svc::MsgType::kHello, "x");
  wire[4] = static_cast<char>(svc::kProtocolVersion + 1);
  EXPECT_EQ(decode_error(wire), svc::ErrCode::kVersionMismatch);
}

TEST(SvcFrame, RejectsUnknownMessageType) {
  std::string wire = encode(svc::MsgType::kHello, "x");
  wire[8] = 99;
  EXPECT_EQ(decode_error(wire), svc::ErrCode::kBadFrame);
}

TEST(SvcFrame, RejectsOversizedDeclaredLength) {
  // Header declaring a payload over the cap; no payload bytes needed —
  // the decoder must refuse before attempting the allocation.
  std::string wire = encode(svc::MsgType::kHello, "");
  const std::uint32_t huge = svc::kMaxFramePayload + 1;
  wire[9] = static_cast<char>(huge & 0xff);
  wire[10] = static_cast<char>((huge >> 8) & 0xff);
  wire[11] = static_cast<char>((huge >> 16) & 0xff);
  wire[12] = static_cast<char>((huge >> 24) & 0xff);
  EXPECT_EQ(decode_error(wire), svc::ErrCode::kOversizedFrame);
}

TEST(SvcFrame, RejectsGarbageStream) {
  EXPECT_EQ(decode_error(std::string(64, '\x5a')), svc::ErrCode::kBadMagic);
}

TEST(SvcFrame, PoisonedDecoderKeepsThrowing) {
  svc::FrameDecoder decoder;
  decoder.feed(std::string(32, '\xff'));
  EXPECT_THROW((void)decoder.next(), svc::SvcError);
  // Even after feeding a perfectly valid frame: framing is lost for good.
  decoder.feed(encode(svc::MsgType::kHello, "ok"));
  EXPECT_THROW((void)decoder.next(), svc::SvcError);
}

TEST(SvcFrame, EncodeRejectsOversizedPayload) {
  svc::Frame frame;
  frame.type = svc::MsgType::kUnitResult;
  frame.payload.resize(svc::kMaxFramePayload + 1);
  try {
    (void)svc::encode_frame(frame);
    FAIL() << "oversized payload encoded";
  } catch (const svc::SvcError& e) {
    EXPECT_EQ(e.code(), svc::ErrCode::kOversizedFrame);
  }
}

TEST(SvcFrame, ParsesEndpoints) {
  const svc::Endpoint ep = svc::parse_endpoint("127.0.0.1:7477");
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 7477);
  EXPECT_THROW(svc::parse_endpoint("no-port"), svc::SvcError);
  EXPECT_THROW(svc::parse_endpoint(":123"), svc::SvcError);
  EXPECT_THROW(svc::parse_endpoint("host:"), svc::SvcError);
  EXPECT_THROW(svc::parse_endpoint("host:abc"), svc::SvcError);
  EXPECT_THROW(svc::parse_endpoint("host:0"), svc::SvcError);
  EXPECT_THROW(svc::parse_endpoint("host:65536"), svc::SvcError);
  EXPECT_THROW(svc::parse_endpoint("host:12x"), svc::SvcError);
}

}  // namespace
