// Probe functions for util_check_test: the same contract-tripping code
// compiled twice, once with checks forced on (IMOBIF_ENABLE_CHECKS) and
// once forced off (IMOBIF_CHECKS_OFF), so a single test binary can pin
// both the death behaviour and the zero-cost expansion regardless of the
// build's own mode.
#pragma once

namespace imobif::test {

struct CheckProbe {
  bool active;                  ///< IMOBIF_CHECKS_ENABLED in that TU
  void (*trip_assert)(bool);    ///< runs IMOBIF_ASSERT(cond, ...)
  void (*trip_ensure)(bool);    ///< runs IMOBIF_ENSURE(cond, ...)
  int (*count_evaluations)();   ///< how often a condition with a side
                                ///< effect is evaluated (0 when compiled out)
};

const CheckProbe& checks_forced_on();
const CheckProbe& checks_forced_off();

}  // namespace imobif::test
