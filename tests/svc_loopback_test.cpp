// End-to-end sweep farm on loopback, with real processes (binary paths
// injected by CMake): an imobif_sweepd coordinator, one worker rigged to
// die mid-sweep (--crash-after-instances), and one healthy worker sharing
// its checkpoint directory. The submitted sweep must survive the crash —
// unit requeued, checkpointed instances resumed, result merged exactly
// once — and the final report must byte-equal the in-process local run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace {

std::filesystem::path scratch_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

/// Waits for the coordinator to publish its ephemeral port.
std::string wait_for_port(const std::filesystem::path& port_file) {
  for (int i = 0; i < 100; ++i) {
    if (std::filesystem::exists(port_file)) {
      std::string port = slurp(port_file);
      while (!port.empty() && (port.back() == '\n' || port.back() == '\r')) {
        port.pop_back();
      }
      if (!port.empty()) return port;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return "";
}

TEST(SvcLoopback, FarmWithWorkerCrashMatchesLocalRunByteForByte) {
  const std::filesystem::path dir = scratch_dir("svc_loopback");
  const std::filesystem::path port_file = dir / "sweepd.port";
  const std::filesystem::path ckpt = dir / "ckpt";
  const std::filesystem::path scenario = dir / "scenario.conf";
  std::filesystem::create_directories(ckpt);
  {
    std::ofstream out(scenario);
    out << "node_count = 60\narea_m = 800\nmean_flow_kb = 60\nseed = 42\n";
  }

  // Coordinator in the background; its log doubles as the assertion
  // record for the crash-retry path.
  const std::filesystem::path sweepd_log = dir / "sweepd.log";
  ASSERT_EQ(run_command(std::string(IMOBIF_SWEEPD_BIN) + " --port-file " +
                        port_file.string() + " > " + sweepd_log.string() +
                        " 2>&1 & echo $! > " + (dir / "sweepd.pid").string()),
            0);
  const std::string port = wait_for_port(port_file);
  ASSERT_FALSE(port.empty()) << "coordinator never published a port";
  const std::string endpoint = "127.0.0.1:" + port;

  // Worker 1 dies (exit 1, no result frame) after two instances; worker 2
  // is healthy. Both share the checkpoint directory, so the requeued
  // unit resumes the dead worker's finished instances.
  ASSERT_EQ(run_command(std::string(IMOBIF_WORKER_BIN) + " --connect " +
                        endpoint + " --name crashy --checkpoint-dir " +
                        ckpt.string() + " --crash-after-instances 2 > " +
                        (dir / "crashy.log").string() + " 2>&1 &"),
            0);
  ASSERT_EQ(run_command(std::string(IMOBIF_WORKER_BIN) + " --connect " +
                        endpoint + " --name steady --checkpoint-dir " +
                        ckpt.string() + " > " +
                        (dir / "steady.log").string() + " 2>&1 &"),
            0);

  // Both workers must have completed their handshake before the sweep is
  // submitted, so each holds one of the two units and the rigged crash is
  // guaranteed to hit an assigned unit.
  bool both_connected = false;
  for (int i = 0; i < 100 && !both_connected; ++i) {
    const std::string log = slurp(sweepd_log);
    both_connected = log.find("worker 'crashy'") != std::string::npos &&
                     log.find("worker 'steady'") != std::string::npos;
    if (!both_connected) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  ASSERT_TRUE(both_connected) << slurp(sweepd_log);

  // Submit through the farm (blocking), then run the identical sweep
  // in-process.
  const std::filesystem::path remote_json = dir / "remote.json";
  const std::filesystem::path local_json = dir / "local.json";
  const std::string common_args = " --config " + scenario.string() +
                                  " --instances 6 --unit-size 4 --quiet";
  EXPECT_EQ(run_command("timeout 240 " + std::string(IMOBIF_SUBMIT_BIN) +
                        " --connect " + endpoint + common_args + " --json " +
                        remote_json.string() + " > " +
                        (dir / "submit.log").string() + " 2>&1"),
            0)
      << slurp(dir / "submit.log") << "\n--- sweepd ---\n"
      << slurp(sweepd_log);
  EXPECT_EQ(run_command("timeout 240 " + std::string(IMOBIF_SUBMIT_BIN) +
                        " --local" + common_args + " --json " +
                        local_json.string() + " > /dev/null 2>&1"),
            0);

  const std::string remote = slurp(remote_json);
  const std::string local = slurp(local_json);
  ASSERT_FALSE(remote.empty());
  EXPECT_EQ(remote, local)
      << "farm report diverged from the local reference run";

  // The crash-retry path must actually have fired: the rigged worker died
  // and its unit was requeued.
  const std::string log = slurp(sweepd_log);
  EXPECT_NE(log.find("requeued"), std::string::npos)
      << "no unit requeue in coordinator log:\n"
      << log;

  // Tear the farm down; workers exit when the coordinator goes away.
  EXPECT_EQ(run_command("timeout 30 " + std::string(IMOBIF_SUBMIT_BIN) +
                        " --connect " + endpoint +
                        " --shutdown > /dev/null 2>&1"),
            0);
}

}  // namespace
