// Checkpoint/restore equivalence (DESIGN.md §9): a run snapshotted at an
// arbitrary event boundary and restored from bytes must (a) hash equal to
// the original, (b) re-encode to the identical snapshot, and (c) finish
// with a byte-identical canonical RunResult JSON — across a clean
// fig6-style scenario, a bursty Gilbert–Elliott lossy one, and a
// multi-flow one.
#include "snap/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exp/instance.hpp"
#include "snap/checkpointer.hpp"
#include "snap/result_io.hpp"
#include "util/rng.hpp"

namespace imobif::snap {
namespace {

exp::ScenarioParams base_params() {
  exp::ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.mean_flow_bits = util::Bits{60.0 * 1024.0 * 8.0};
  p.seed = 42;
  return p;
}

exp::ScenarioParams lossy_ge_params() {
  exp::ScenarioParams p = base_params();
  p.seed = 97;
  p.fault.gilbert_elliott = true;
  p.fault.p_good_to_bad = 0.05;
  p.fault.p_bad_to_good = 0.3;
  p.fault.loss_bad = 0.8;
  p.fault.seed = 777;
  p.notify_retry_cap = 4;
  return p;
}

std::string result_json(exp::InstanceRun& run) {
  return result_to_json(run.result()).dump(2);
}

/// Runs the scenario uninterrupted, then re-runs it with a snapshot taken
/// after `boundary_events` simulator events and restored in a fresh
/// object graph; both must finish identically.
void expect_checkpoint_equivalence(const exp::ScenarioParams& params,
                                   core::MobilityMode mode,
                                   const exp::RunOptions& options,
                                   std::size_t boundary_events) {
  SCOPED_TRACE("boundary_events=" + std::to_string(boundary_events));
  util::Rng rng(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, rng);

  auto reference = exp::InstanceRun::create(instance, params, mode, options);
  EXPECT_TRUE(reference->advance());
  const std::string expected = result_json(*reference);

  util::Rng rng2(params.seed);
  const exp::FlowInstance instance2 = exp::sample_instance(params, rng2);
  auto original = exp::InstanceRun::create(instance2, params, mode, options);
  original->set_sampler_rng_state(rng2.state());
  original->advance(boundary_events);

  const std::uint64_t hash_before = state_hash(*original);
  const std::string bytes = encode(*original);

  auto restored = restore(bytes);
  // Bit-exact state: same dynamic hash, and re-encoding reproduces the
  // snapshot byte for byte (meta included).
  EXPECT_EQ(state_hash(*restored), hash_before);
  EXPECT_EQ(encode(*restored), bytes);
  ASSERT_TRUE(restored->sampler_rng_state().has_value());
  EXPECT_EQ(*restored->sampler_rng_state(), rng2.state());

  // Both halves of the split run finish with the reference result.
  EXPECT_TRUE(restored->advance());
  EXPECT_EQ(result_json(*restored), expected);
  EXPECT_TRUE(original->advance());
  EXPECT_EQ(result_json(*original), expected);
}

TEST(SnapCheckpoint, BaselineScenarioEquivalentAtManyBoundaries) {
  for (const std::size_t boundary : {std::size_t{1}, std::size_t{487},
                                     std::size_t{5000}}) {
    expect_checkpoint_equivalence(base_params(),
                                  core::MobilityMode::kInformed, {},
                                  boundary);
  }
}

TEST(SnapCheckpoint, LossyGilbertElliottScenarioEquivalent) {
  for (const std::size_t boundary : {std::size_t{311}, std::size_t{4000}}) {
    expect_checkpoint_equivalence(lossy_ge_params(),
                                  core::MobilityMode::kInformed, {},
                                  boundary);
  }
}

TEST(SnapCheckpoint, MultiflowScenarioEquivalent) {
  exp::ScenarioParams params = base_params();
  params.seed = 7;
  util::Rng probe(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, probe);

  exp::RunOptions options;
  options.multi_flow_blending = true;
  net::FlowSpec extra;
  extra.id = 2;
  extra.source = instance.destination;
  extra.destination = instance.source;
  extra.length_bits = util::Bits{30.0 * 1024.0 * 8.0};
  extra.packet_bits = util::Bits{params.packet_bits};
  extra.rate_bps = util::BitsPerSecond{params.rate_bps};
  extra.strategy = params.strategy;
  options.extra_flows.push_back(extra);

  for (const std::size_t boundary : {std::size_t{701}, std::size_t{6000}}) {
    expect_checkpoint_equivalence(params, core::MobilityMode::kInformed,
                                  options, boundary);
  }
}

TEST(SnapCheckpoint, CostUnawareAndBaselineModesEquivalent) {
  expect_checkpoint_equivalence(base_params(),
                                core::MobilityMode::kNoMobility, {}, 1500);
  expect_checkpoint_equivalence(base_params(),
                                core::MobilityMode::kCostUnaware, {}, 1500);
}

TEST(SnapCheckpoint, SaveRestoreFileRoundTrip) {
  const exp::ScenarioParams params = base_params();
  util::Rng rng(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, rng);
  auto run = exp::InstanceRun::create(instance, params,
                                      core::MobilityMode::kInformed, {});
  run->advance(2000);

  const std::string path = ::testing::TempDir() + "snap_checkpoint_rt.ckpt";
  save(*run, path);
  auto restored = restore_file(path);
  EXPECT_EQ(state_hash(*restored), state_hash(*run));
  std::remove(path.c_str());
}

TEST(SnapCheckpoint, DebugJsonNamesEverySection) {
  const exp::ScenarioParams params = base_params();
  util::Rng rng(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, rng);
  auto run = exp::InstanceRun::create(instance, params,
                                      core::MobilityMode::kInformed, {});
  run->advance(500);
  const std::string json = debug_json(*run);
  for (const char* section :
       {"meta", "sim", "network", "medium", "nodes", "policy", "events"}) {
    EXPECT_NE(json.find("\"section\": \"" + std::string(section) + "\""),
              std::string::npos)
        << "missing section " << section;
  }
}

TEST(SnapCheckpoint, CheckpointerWritesAtChunkBoundaries) {
  const exp::ScenarioParams params = base_params();
  util::Rng rng(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, rng);
  auto run = exp::InstanceRun::create(instance, params,
                                      core::MobilityMode::kInformed, {});

  const std::string path = ::testing::TempDir() + "snap_checkpointer.ckpt";
  CheckpointPolicy policy;
  policy.every_sim_s = 20.0;
  Checkpointer checkpointer(path, policy);
  checkpointer.install(*run);
  EXPECT_TRUE(run->advance());
  EXPECT_GE(checkpointer.checkpoints_written(), 1u);

  // The last checkpoint restores and finishes with the same result.
  auto restored = restore_file(path);
  EXPECT_TRUE(restored->advance());
  EXPECT_EQ(result_json(*restored), result_json(*run));
  std::remove(path.c_str());
}

TEST(SnapCheckpoint, RunResultBinaryRoundTrip) {
  const exp::ScenarioParams params = base_params();
  util::Rng rng(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, rng);
  auto run = exp::InstanceRun::create(instance, params,
                                      core::MobilityMode::kInformed, {});
  EXPECT_TRUE(run->advance());
  const exp::RunResult result = run->result();

  const std::string path = ::testing::TempDir() + "snap_result_rt.bin";
  save_result(path, result);
  const exp::RunResult loaded = load_result(path);
  EXPECT_EQ(result_to_json(result).dump(), result_to_json(loaded).dump());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imobif::snap
