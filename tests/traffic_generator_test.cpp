// Traffic-generator unit tests: CBR pass-through, mean preservation of the
// stochastic models, the (rng, state) checkpoint contract, and parameter
// validation (DESIGN.md §14).
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "traffic/generator.hpp"
#include "traffic/params.hpp"

namespace imobif::traffic {
namespace {

using util::Seconds;

Params params_for(ModelId id) {
  Params p;
  p.model = id;
  p.on_mean_s = Seconds{5.0};
  p.off_mean_s = Seconds{5.0};
  p.pareto_shape = 1.5;
  return p;
}

constexpr Seconds kBase{1.0};

TEST(TrafficGenerator, CbrReturnsBaseVerbatimWithoutRngDraws) {
  const auto gen = make_generator(params_for(ModelId::kCbr), 11);
  const auto rng_before = gen->rng().state();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen->next_interval(kBase), kBase);
  }
  // The legacy packet train must not consume randomness: a CBR generator
  // behaves exactly like the inline interval computation it mirrors.
  EXPECT_EQ(gen->rng().state(), rng_before);
  EXPECT_TRUE(gen->state().empty());
}

TEST(TrafficGenerator, StochasticModelsApproximatelyPreserveTheMean) {
  for (const ModelId id : {ModelId::kOnOff, ModelId::kPareto}) {
    const auto gen = make_generator(params_for(id), 2024);
    double total = 0.0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) {
      const Seconds interval = gen->next_interval(kBase);
      EXPECT_GT(interval, Seconds{0.0});
      total += interval.value();
    }
    // Long-run mean interval ~ base, so every model carries the flow's
    // nominal rate (10% tolerance: pareto at shape 1.5 converges slowly).
    EXPECT_NEAR(total / kDraws, kBase.value(), 0.1)
        << "model " << to_string(id);
  }
}

TEST(TrafficGenerator, OnOffAlternatesBurstsAndGaps) {
  const auto gen = make_generator(params_for(ModelId::kOnOff), 5);
  const Seconds peak = kBase * 0.5;  // duty = 5 / (5 + 5)
  std::size_t peaks = 0;
  std::size_t gaps = 0;
  for (int i = 0; i < 1000; ++i) {
    const Seconds interval = gen->next_interval(kBase);
    if (interval == peak) {
      ++peaks;
    } else {
      EXPECT_GT(interval, peak);
      ++gaps;
    }
  }
  EXPECT_GT(peaks, 0u);
  EXPECT_GT(gaps, 0u);
  EXPECT_GT(peaks, gaps);  // bursts hold several packets on average
}

TEST(TrafficGenerator, SameSeedSameSequence) {
  for (const ModelId id : {ModelId::kOnOff, ModelId::kPareto}) {
    const auto a = make_generator(params_for(id), 77);
    const auto b = make_generator(params_for(id), 77);
    for (int i = 0; i < 500; ++i) {
      ASSERT_EQ(a->next_interval(kBase), b->next_interval(kBase))
          << "model " << to_string(id) << " draw " << i;
    }
  }
}

// The checkpoint contract: (rng state, state()) restored into a fresh
// generator reproduces the original's future draws exactly.
TEST(TrafficGenerator, RngPlusStateRestoresMidStream) {
  for (const ModelId id :
       {ModelId::kCbr, ModelId::kOnOff, ModelId::kPareto}) {
    const Params p = params_for(id);
    const auto original = make_generator(p, 31);
    for (int i = 0; i < 137; ++i) original->next_interval(kBase);

    const auto restored = make_generator(p, 1);
    restored->rng().set_state(original->rng().state());
    restored->restore_state(original->state());
    for (int i = 0; i < 500; ++i) {
      ASSERT_EQ(original->next_interval(kBase),
                restored->next_interval(kBase))
          << "model " << to_string(id) << " draw " << i;
    }
  }
}

TEST(TrafficGenerator, RestoreStateRejectsWrongSize) {
  const auto cbr = make_generator(params_for(ModelId::kCbr), 1);
  EXPECT_THROW(cbr->restore_state({1.0}), std::invalid_argument);
  const auto onoff = make_generator(params_for(ModelId::kOnOff), 1);
  EXPECT_THROW(onoff->restore_state({}), std::invalid_argument);
  EXPECT_THROW(onoff->restore_state({1.0, 2.0}), std::invalid_argument);
  const auto pareto = make_generator(params_for(ModelId::kPareto), 1);
  EXPECT_THROW(pareto->restore_state({1.0}), std::invalid_argument);
}

TEST(TrafficParams, StringRoundTrip) {
  for (const ModelId id :
       {ModelId::kCbr, ModelId::kOnOff, ModelId::kPareto}) {
    EXPECT_EQ(model_from_string(to_string(id)), id);
  }
  EXPECT_EQ(model_from_string("on-off"), ModelId::kOnOff);
  EXPECT_THROW(model_from_string("firehose"), std::invalid_argument);
}

TEST(TrafficParams, ValidateCatchesBadKnobs) {
  Params p = params_for(ModelId::kOnOff);
  p.on_mean_s = Seconds{0.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = params_for(ModelId::kOnOff);
  p.off_mean_s = Seconds{-1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = params_for(ModelId::kPareto);
  p.pareto_shape = 1.0;  // infinite mean below/at 1
  EXPECT_THROW(p.validate(), std::invalid_argument);

  // CBR (disabled) never validates the stochastic knobs.
  Params off;
  off.pareto_shape = 0.0;
  EXPECT_NO_THROW(off.validate());
  EXPECT_FALSE(off.enabled());
}

}  // namespace
}  // namespace imobif::traffic
