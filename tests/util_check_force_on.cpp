// Compiled with IMOBIF_ENABLE_CHECKS=1 (see tests/CMakeLists.txt).
#include "util/check.hpp"
#include "util_check_probe.hpp"

static_assert(IMOBIF_CHECKS_ENABLED == 1,
              "this TU must be built with contracts forced on");

namespace imobif::test {
namespace {

void trip_assert(bool cond) { IMOBIF_ASSERT(cond, "forced assert"); }
void trip_ensure(bool cond) { IMOBIF_ENSURE(cond, "forced ensure"); }

int count_evaluations() {
  int calls = 0;
  IMOBIF_ASSERT(++calls > 0);
  return calls;
}

}  // namespace

const CheckProbe& checks_forced_on() {
  static const CheckProbe probe{IMOBIF_CHECKS_ENABLED == 1, &trip_assert,
                                &trip_ensure, &count_evaluations};
  return probe;
}

}  // namespace imobif::test
