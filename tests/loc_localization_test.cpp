#include <gtest/gtest.h>

#include "loc/localization.hpp"
#include "util/rng.hpp"

namespace imobif::loc {
namespace {

TEST(Multilaterate, ExactWithPerfectRanges) {
  const geom::Vec2 target{37.0, -12.0};
  std::vector<RangeSample> samples;
  for (const geom::Vec2 a :
       {geom::Vec2{0, 0}, geom::Vec2{100, 0}, geom::Vec2{0, 100}}) {
    samples.push_back({a, geom::distance(target, a)});
  }
  const auto x = multilaterate(samples, {30.0, 30.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(x->x, target.x, 1e-6);
  EXPECT_NEAR(x->y, target.y, 1e-6);
  EXPECT_NEAR(range_rms(samples, *x), 0.0, 1e-6);
}

TEST(Multilaterate, NeedsThreeSamples) {
  std::vector<RangeSample> samples{{{0, 0}, 5.0}, {{10, 0}, 5.0}};
  EXPECT_FALSE(multilaterate(samples, {5.0, 0.0}).has_value());
}

TEST(Multilaterate, CollinearReferencesDegenerate) {
  // All references on the x-axis: the y-coordinate is unobservable when
  // the iterate sits on the axis too.
  std::vector<RangeSample> samples{
      {{0, 0}, 10.0}, {{10, 0}, 5.0}, {{20, 0}, 10.0}};
  EXPECT_FALSE(multilaterate(samples, {10.0, 0.0}).has_value());
}

TEST(Multilaterate, RobustToModerateNoise) {
  util::Rng rng(5);
  const geom::Vec2 target{120.0, 80.0};
  int good = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<RangeSample> samples;
    geom::Vec2 centroid{0, 0};
    for (int i = 0; i < 6; ++i) {
      const geom::Vec2 a{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)};
      samples.push_back(
          {a, geom::distance(target, a) + rng.normal(0.0, 2.0)});
      centroid += a;
    }
    const auto x = multilaterate(samples, centroid / 6.0);
    if (x.has_value() && geom::distance(*x, target) < 6.0) ++good;
  }
  EXPECT_GE(good, 45);  // >= 90% of trials land within 3 sigma
}

TEST(Multilaterate, StartingOnReferenceStillConverges) {
  const geom::Vec2 target{50.0, 50.0};
  std::vector<RangeSample> samples;
  for (const geom::Vec2 a :
       {geom::Vec2{0, 0}, geom::Vec2{100, 10}, geom::Vec2{10, 100}}) {
    samples.push_back({a, geom::distance(target, a)});
  }
  const auto x = multilaterate(samples, samples[0].reference);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(geom::distance(*x, target), 0.0, 1e-5);
}

std::vector<geom::Vec2> grid_field(std::size_t per_side, double spacing) {
  std::vector<geom::Vec2> out;
  for (std::size_t r = 0; r < per_side; ++r) {
    for (std::size_t c = 0; c < per_side; ++c) {
      out.push_back({spacing * static_cast<double>(c),
                     spacing * static_cast<double>(r)});
    }
  }
  return out;
}

TEST(LocalizeNetwork, PerfectRangesRecoverEveryPosition) {
  const auto truth = grid_field(5, 80.0);  // 25 nodes, 80 m pitch
  std::vector<bool> anchors(truth.size(), false);
  // Four corner anchors plus one center anchor.
  anchors[0] = anchors[4] = anchors[20] = anchors[24] = anchors[12] = true;

  LocalizationConfig config;
  config.range_m = 180.0;
  config.noise_sigma_m = 0.0;
  const auto result = localize_network(truth, anchors, config);

  EXPECT_EQ(result.localized_count, truth.size());
  EXPECT_LT(result.mean_error_m, 1e-4);
  EXPECT_LT(result.max_error_m, 1e-3);
}

TEST(LocalizeNetwork, PropagatesBeyondAnchorRange) {
  // A ladder advancing rightward from three anchors at the left end:
  // every rung sees >= 3 earlier references, so estimates propagate node
  // by node until the far end — which is well outside every anchor's
  // ranging radius — is localized too.
  std::vector<geom::Vec2> truth{{0, 0},    {0, 80},   {80, 0},
                                {80, 80},  {160, 0},  {160, 80},
                                {240, 0},  {240, 80}, {320, 40}};
  std::vector<bool> anchors(truth.size(), false);
  anchors[0] = anchors[1] = anchors[2] = true;
  LocalizationConfig config;
  config.range_m = 180.0;
  const auto result = localize_network(truth, anchors, config);
  // Node 8 at x = 320 is > 180 m from every anchor yet localized.
  ASSERT_TRUE(result.estimates[8].has_value());
  EXPECT_LT(geom::distance(*result.estimates[8], truth[8]), 1e-3);
  EXPECT_EQ(result.localized_count, truth.size());
}

TEST(LocalizeNetwork, IsolatedNodesStayUnlocalized) {
  std::vector<geom::Vec2> truth{{0, 0}, {0, 100}, {100, 0}, {5000, 5000}};
  std::vector<bool> anchors{true, true, true, false};
  LocalizationConfig config;
  config.range_m = 180.0;
  const auto result = localize_network(truth, anchors, config);
  EXPECT_FALSE(result.estimates[3].has_value());
  EXPECT_EQ(result.localized_count, 3u);
}

TEST(LocalizeNetwork, NoiseDegradesGracefully) {
  const auto truth = grid_field(5, 80.0);
  std::vector<bool> anchors(truth.size(), false);
  anchors[0] = anchors[4] = anchors[20] = anchors[24] = anchors[12] = true;

  LocalizationConfig quiet;
  quiet.noise_sigma_m = 0.5;
  quiet.seed = 3;
  LocalizationConfig loud = quiet;
  loud.noise_sigma_m = 5.0;

  const auto a = localize_network(truth, anchors, quiet);
  const auto b = localize_network(truth, anchors, loud);
  EXPECT_GT(a.localized_count, truth.size() - 3);
  EXPECT_LT(a.mean_error_m, b.mean_error_m);
  EXPECT_LT(a.mean_error_m, 3.0);
}

TEST(LocalizeNetwork, DeterministicInSeed) {
  const auto truth = grid_field(4, 90.0);
  std::vector<bool> anchors(truth.size(), false);
  anchors[0] = anchors[3] = anchors[12] = anchors[15] = true;
  LocalizationConfig config;
  config.noise_sigma_m = 2.0;
  config.seed = 11;
  const auto a = localize_network(truth, anchors, config);
  const auto b = localize_network(truth, anchors, config);
  EXPECT_DOUBLE_EQ(a.mean_error_m, b.mean_error_m);
  EXPECT_EQ(a.localized_count, b.localized_count);
}

TEST(LocalizeNetwork, Validation) {
  std::vector<geom::Vec2> truth{{0, 0}};
  std::vector<bool> anchors{true, false};
  LocalizationConfig config;
  EXPECT_THROW(localize_network(truth, anchors, config),
               std::invalid_argument);
  anchors = {true};
  config.range_m = 0.0;
  EXPECT_THROW(localize_network(truth, anchors, config),
               std::invalid_argument);
}

TEST(RngNormal, MomentsMatch) {
  util::Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal(3.0, 2.0);
    sum += z;
    sum_sq += z * z;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace imobif::loc
