// SweepEngine / run_comparison_parallel: results must be bit-identical
// regardless of worker count, and the parallel comparison must match the
// sequential exp::run_comparison exactly.
#include <gtest/gtest.h>

#include <vector>

#include "exp/experiments.hpp"
#include "runtime/report.hpp"
#include "runtime/sweep.hpp"

namespace imobif::runtime {
namespace {

exp::ScenarioParams small_params() {
  exp::ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.mean_flow_bits = util::Bits{60.0 * 1024.0 * 8.0};
  p.seed = 42;
  return p;
}

/// Paper-scale geometry with an armed fault injector and notification
/// retries — the lossy world must be exactly as deterministic as the
/// clean one. Long flows at this density make informed mode actually
/// send notifications, so the retry machinery is exercised too.
exp::ScenarioParams lossy_params() {
  exp::ScenarioParams p;  // paper defaults: 100 nodes / 1000 m
  p.mean_flow_bits = util::Bits{1024.0 * 1024.0 * 8.0};
  p.seed = 20050610;
  p.fault.loss_rate = 0.2;
  p.fault.seed = 777;
  p.notify_retry_cap = 5;
  return p;
}

void expect_same_run(const exp::RunResult& a, const exp::RunResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.delivered_bits, b.delivered_bits);
  EXPECT_EQ(a.completion_s, b.completion_s);
  EXPECT_EQ(a.transmit_energy_j, b.transmit_energy_j);
  EXPECT_EQ(a.movement_energy_j, b.movement_energy_j);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.notify_retries, b.notify_retries);
  EXPECT_EQ(a.notifications_applied, b.notifications_applied);
  EXPECT_EQ(a.medium.dropped_injected, b.medium.dropped_injected);
  EXPECT_EQ(a.medium.dropped_faulted, b.medium.dropped_faulted);
  EXPECT_EQ(a.movements, b.movements);
  EXPECT_EQ(a.moved_distance_m, b.moved_distance_m);
  EXPECT_EQ(a.lifetime_s, b.lifetime_s);
  EXPECT_EQ(a.path, b.path);
  ASSERT_EQ(a.final_energies.size(), b.final_energies.size());
  for (std::size_t i = 0; i < a.final_energies.size(); ++i) {
    EXPECT_EQ(a.final_energies[i], b.final_energies[i]);  // bitwise
  }
}

TEST(DeriveSeed, StatelessAndIndexSensitive) {
  EXPECT_EQ(derive_seed(123, 0), derive_seed(123, 0));
  EXPECT_NE(derive_seed(123, 0), derive_seed(123, 1));
  EXPECT_NE(derive_seed(123, 0), derive_seed(124, 0));
  // Adjacent (base, index) pairs that sum equally collide by construction
  // of splitmix64(base + index); sweeps use one base, so only index
  // variation matters.
  EXPECT_EQ(derive_seed(10, 5), derive_seed(11, 4));
}

TEST(SweepEngine, WorkerCountDoesNotChangeOutcomes) {
  std::vector<SweepJob> jobs;
  for (int i = 0; i < 6; ++i) {
    SweepJob job;
    job.params = small_params();
    job.mode = (i % 2 == 0) ? core::MobilityMode::kInformed
                            : core::MobilityMode::kCostUnaware;
    jobs.push_back(job);
  }

  const auto serial = SweepEngine(1).run(jobs, 99);
  const auto parallel = SweepEngine(4).run(jobs, 99);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serial[i].seed, derive_seed(99, i));
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].flow_bits, parallel[i].flow_bits);
    EXPECT_EQ(serial[i].hops, parallel[i].hops);
    expect_same_run(serial[i].result, parallel[i].result);
  }
}

TEST(RunComparisonParallel, JobCountsProduceIdenticalPoints) {
  const exp::ScenarioParams p = small_params();
  const std::size_t kInstances = 12;

  const auto one = run_comparison_parallel(p, kInstances, {}, 1);
  const auto eight = run_comparison_parallel(p, kInstances, {}, 8);
  ASSERT_EQ(one.size(), kInstances);
  ASSERT_EQ(eight.size(), kInstances);
  for (std::size_t i = 0; i < kInstances; ++i) {
    EXPECT_EQ(one[i].flow_bits, eight[i].flow_bits);
    EXPECT_EQ(one[i].hops, eight[i].hops);
    expect_same_run(one[i].baseline, eight[i].baseline);
    expect_same_run(one[i].cost_unaware, eight[i].cost_unaware);
    expect_same_run(one[i].informed, eight[i].informed);
  }
}

TEST(RunComparisonParallel, MatchesSequentialRunComparison) {
  const exp::ScenarioParams p = small_params();
  const std::size_t kInstances = 4;

  const auto sequential = exp::run_comparison(p, kInstances);
  const auto parallel = run_comparison_parallel(p, kInstances, {}, 3);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < kInstances; ++i) {
    EXPECT_EQ(sequential[i].flow_bits, parallel[i].flow_bits);
    expect_same_run(sequential[i].baseline, parallel[i].baseline);
    expect_same_run(sequential[i].informed, parallel[i].informed);
  }
}

TEST(RunComparisonParallel, LossyJobCountsProduceIdenticalPoints) {
  // Fault injection must not reintroduce worker-count sensitivity: drop
  // decisions are stateless per-link hashes, so a lossy sweep is as
  // reproducible as a clean one.
  const exp::ScenarioParams p = lossy_params();
  const std::size_t kInstances = 6;

  const auto one = run_comparison_parallel(p, kInstances, {}, 1);
  const auto eight = run_comparison_parallel(p, kInstances, {}, 8);
  ASSERT_EQ(one.size(), kInstances);
  ASSERT_EQ(eight.size(), kInstances);
  bool any_injected = false, any_retry = false;
  for (std::size_t i = 0; i < kInstances; ++i) {
    EXPECT_EQ(one[i].flow_bits, eight[i].flow_bits);
    EXPECT_EQ(one[i].hops, eight[i].hops);
    expect_same_run(one[i].baseline, eight[i].baseline);
    expect_same_run(one[i].cost_unaware, eight[i].cost_unaware);
    expect_same_run(one[i].informed, eight[i].informed);
    any_injected |= one[i].informed.medium.dropped_injected > 0;
    any_retry |= one[i].informed.notify_retries > 0;
  }
  EXPECT_TRUE(any_injected);  // the faults really were exercised
  EXPECT_TRUE(any_retry);
}

TEST(SweepReport, LossyJsonPayloadIdenticalAcrossJobCounts) {
  // The full artifact path under loss — series AND drop counters — must
  // be byte-identical for --jobs 1 vs --jobs 8 (only wall_ms may differ,
  // and it is deliberately left unset here).
  const exp::ScenarioParams p = lossy_params();
  const auto build = [&p](std::size_t workers) {
    const auto points = run_comparison_parallel(p, 4, {}, workers);
    SweepReport report("lossy_determinism_check");
    std::vector<double> retries, delivered;
    std::uint64_t injected = 0;
    for (const auto& pt : points) {
      retries.push_back(static_cast<double>(pt.informed.notify_retries));
      delivered.push_back(pt.informed.delivered_bits.value());
      injected += pt.informed.medium.dropped_injected;
    }
    report.set_meta("seed", p.seed);
    report.add_series("notify_retries", retries);
    report.add_series("delivered_bits", delivered);
    report.set_counter("dropped_injected", injected);
    return report.to_string();
  };
  EXPECT_EQ(build(1), build(8));
}

TEST(SweepReport, JsonPayloadIdenticalAcrossJobCounts) {
  const exp::ScenarioParams p = small_params();
  const auto build = [&p](std::size_t workers) {
    const auto points = run_comparison_parallel(p, 6, {}, workers);
    SweepReport report("determinism_check");
    std::vector<double> informed, cost_unaware;
    for (const auto& pt : points) {
      informed.push_back(pt.energy_ratio_informed());
      cost_unaware.push_back(pt.energy_ratio_cost_unaware());
    }
    report.set_meta("seed", p.seed);
    report.add_series("ratio_informed", informed);
    report.add_series("ratio_cost_unaware", cost_unaware);
    // wall_ms deliberately unset: the payload must be byte-identical.
    return report.to_string();
  };
  EXPECT_EQ(build(1), build(8));
}

TEST(SweepReport, JsonShapeAndStats) {
  SweepReport report("shape");
  report.set_meta("k", 0.5);
  report.add_series("vals", {1.0, 2.0, 3.0});
  report.add_series("no_raw", {4.0, 6.0}, /*include_values=*/false);
  const util::Json json = report.to_json();

  ASSERT_NE(json.find("bench"), nullptr);
  EXPECT_EQ(json.find("bench")->dump(), "\"shape\"");
  EXPECT_EQ(json.find("wall_ms"), nullptr);  // unset -> omitted

  const util::Json* series = json.find("series");
  ASSERT_NE(series, nullptr);
  const util::Json* vals = series->find("vals");
  ASSERT_NE(vals, nullptr);
  EXPECT_EQ(vals->find("count")->dump(), "3");
  EXPECT_EQ(vals->find("mean")->dump(), "2");
  EXPECT_EQ(vals->find("min")->dump(), "1");
  EXPECT_EQ(vals->find("max")->dump(), "3");
  ASSERT_NE(vals->find("ci95"), nullptr);
  EXPECT_NE(vals->find("values"), nullptr);
  EXPECT_EQ(series->find("no_raw")->find("values"), nullptr);

  SweepReport timed("timed");
  timed.set_wall_ms(12.5);
  ASSERT_NE(timed.to_json().find("wall_ms"), nullptr);
  EXPECT_EQ(timed.to_json().find("wall_ms")->dump(), "12.5");
}

}  // namespace
}  // namespace imobif::runtime
