// Notification-damping option of the destination evaluator.
#include <gtest/gtest.h>

#include "exp/experiments.hpp"
#include "test_helpers.hpp"

namespace imobif::core {
namespace {

using test::make_harness;

net::DataBody enable_worthy_packet(std::uint32_t seq) {
  net::DataBody data;
  data.strategy = net::StrategyId::kMinTotalEnergy;
  data.seq = seq;
  data.residual_flow_bits = util::Bits{1000.0};
  data.mobility_enabled = false;
  data.sender_has_plan = true;
  data.sender_move_cost = util::Joules{0.0};
  data.agg = {util::Bits{1e12}, util::Joules{1e12}, util::Bits{1.0},
              util::Joules{1.0}};  // mobility hugely better
  return data;
}

TEST(NotificationDamping, DefaultReNotifiesEveryPacket) {
  auto h = make_harness({{0, 0}, {100, 0}});
  net::FlowEntry entry;
  entry.prev = 0;
  int notifications = 0;
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    auto data = enable_worthy_packet(seq);
    data.sender_target = h.net().node(0).position();
    if (h.policy->evaluate_at_destination(h.net().node(1), data, entry)
            .has_value()) {
      ++notifications;
    }
  }
  EXPECT_EQ(notifications, 5);  // paper behaviour: per-packet re-evaluation
}

TEST(NotificationDamping, GapSuppressesRepeats) {
  auto h = make_harness({{0, 0}, {100, 0}});
  h.policy->set_notification_min_gap(3);
  net::FlowEntry entry;
  entry.prev = 0;
  std::vector<std::uint32_t> notified_at;
  for (std::uint32_t seq = 0; seq < 8; ++seq) {
    auto data = enable_worthy_packet(seq);
    data.sender_target = h.net().node(0).position();
    if (h.policy->evaluate_at_destination(h.net().node(1), data, entry)
            .has_value()) {
      notified_at.push_back(seq);
    }
  }
  EXPECT_EQ(notified_at, (std::vector<std::uint32_t>{0, 3, 6}));
}

TEST(NotificationDamping, NoRequestNoStateChange) {
  auto h = make_harness({{0, 0}, {100, 0}});
  h.policy->set_notification_min_gap(3);
  net::FlowEntry entry;
  entry.prev = 0;
  auto data = enable_worthy_packet(0);
  data.sender_target = h.net().node(0).position();
  data.mobility_enabled = true;  // already enabled: no request wanted
  EXPECT_FALSE(h.policy->evaluate_at_destination(h.net().node(1), data, entry)
                   .has_value());
  // The gap clock must not have started.
  EXPECT_FALSE(entry.last_notify_seq.has_value());
}

TEST(NotificationDamping, GapAppliesAcrossDirectionFlips) {
  auto h = make_harness({{0, 0}, {100, 0}});
  h.policy->set_notification_min_gap(5);
  net::FlowEntry entry;
  entry.prev = 0;

  auto enable = enable_worthy_packet(0);
  enable.sender_target = h.net().node(0).position();
  ASSERT_TRUE(h.policy->evaluate_at_destination(h.net().node(1), enable, entry)
                  .has_value());

  // One packet later mobility looks worse and is enabled: a disable would
  // be wanted, but the gap holds it back.
  auto disable = enable_worthy_packet(1);
  disable.sender_target = h.net().node(0).position();
  disable.mobility_enabled = true;
  disable.agg = {util::Bits{1.0}, util::Joules{1.0}, util::Bits{1e12},
                 util::Joules{1e12}};
  EXPECT_FALSE(
      h.policy->evaluate_at_destination(h.net().node(1), disable, entry)
          .has_value());

  disable.seq = 6;  // past the gap
  EXPECT_TRUE(
      h.policy->evaluate_at_destination(h.net().node(1), disable, entry)
          .has_value());
}

TEST(NotificationDamping, EndToEndRateBoundHolds) {
  // The gap's contract is a *rate limit*: per flow, at most one
  // notification every `gap` data packets (it cannot promise fewer total
  // flips when the cost/benefit signal genuinely oscillates). Completion
  // must be unaffected.
  exp::ScenarioParams p;
  p.mobility.k = 0.1;
  p.mean_flow_bits = util::Bits{1024.0 * 1024.0 * 8.0};
  p.length_estimate_factor = 4.0;  // oscillation-prone (see ablation A2)
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.seed = 21;
  p.notification_min_gap = 8;

  const auto points = exp::run_comparison(p, 4);
  for (const auto& pt : points) {
    EXPECT_TRUE(pt.informed.completed);
    const double packets = std::ceil(pt.flow_bits / p.packet_bits);
    const auto bound =
        static_cast<std::uint64_t>(packets / p.notification_min_gap) + 1;
    EXPECT_LE(pt.informed.notifications, bound);
  }
}

}  // namespace
}  // namespace imobif::core
