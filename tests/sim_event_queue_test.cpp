#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace imobif::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), Time::infinity());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::from_seconds(3.0), [&] { order.push_back(3); });
  q.schedule(Time::from_seconds(1.0), [&] { order.push_back(1); });
  q.schedule(Time::from_seconds(2.0), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  const Time t = Time::from_seconds(1.0);
  for (int i = 0; i < 5; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopReturnsScheduledTime) {
  EventQueue q;
  q.schedule(Time::from_seconds(7.5), [] {});
  EXPECT_EQ(q.pop().when, Time::from_seconds(7.5));
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  q.schedule(Time::from_seconds(5.0), [] {});
  q.schedule(Time::from_seconds(2.0), [] {});
  EXPECT_EQ(q.next_time(), Time::from_seconds(2.0));
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(Time::from_seconds(1.0), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::infinity());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(Time::from_seconds(1.0), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.schedule(Time::from_seconds(1.0), [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::from_seconds(1.0), [&] { order.push_back(1); });
  const EventId mid =
      q.schedule(Time::from_seconds(2.0), [&] { order.push_back(2); });
  q.schedule(Time::from_seconds(3.0), [&] { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(Time::from_seconds(1.0), [] {});
  q.schedule(Time::from_seconds(2.0), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

// --- Batched same-tick draining (DESIGN.md §12) ---------------------------

TEST(EventQueueBatch, StageDueBatchDrainsWholeTick) {
  EventQueue q;
  const Time t = Time::from_seconds(1.0);
  for (int i = 0; i < 4; ++i) q.schedule(t, [] {});
  q.schedule(Time::from_seconds(2.0), [] {});
  EXPECT_EQ(q.staged(), 0u);
  EXPECT_EQ(q.stage_due_batch(), 4u);  // the whole 1.0 s tick, not the 2.0 s
  EXPECT_EQ(q.staged(), 4u);
  // Idempotent while a batch is in flight: a batch never mixes two times.
  EXPECT_EQ(q.stage_due_batch(), 4u);
  EXPECT_EQ(q.size(), 5u);  // staging removes nothing
}

TEST(EventQueueBatch, SameTickDrainPreservesSeqOrder) {
  EventQueue q;
  std::vector<int> order;
  const Time t = Time::from_seconds(3.0);
  for (int i = 0; i < 8; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  q.stage_due_batch();
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueBatch, ScheduleDuringBatchRunsAfterStagedPeers) {
  // An event scheduled mid-batch for the *same* tick carries a larger seq
  // and must run after every already-staged peer — this is the property
  // that keeps batched execution bit-identical to per-event popping.
  EventQueue q;
  std::vector<int> order;
  const Time t = Time::from_seconds(1.0);
  q.schedule(t, [&] {
    order.push_back(0);
    q.schedule(t, [&] { order.push_back(9); });  // same tick, mid-batch
  });
  q.schedule(t, [&] { order.push_back(1); });
  q.schedule(t, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(EventQueueBatch, HeapNewcomerBetweenTicksRunsBeforeLaterBatch) {
  // An event scheduled mid-batch for a time *between* the staged tick and
  // the rest of the heap must run in its proper slot: pop() compares the
  // staged front against the heap front every time.
  EventQueue q;
  std::vector<int> order;
  const Time t1 = Time::from_seconds(1.0);
  const Time t2 = Time::from_seconds(2.0);
  q.schedule(t2, [&] { order.push_back(20); });
  q.schedule(t1, [&] {
    order.push_back(1);
    // Newcomer between the staged tick (1.0) and the heap's 2.0.
    q.schedule(Time::from_seconds(1.5), [&] { order.push_back(15); });
  });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 15, 20}));
}

TEST(EventQueueBatch, CancelDuringStagedBatchIsHonored) {
  EventQueue q;
  std::vector<int> order;
  const Time t = Time::from_seconds(1.0);
  q.schedule(t, [&] { order.push_back(0); });
  const EventId victim = q.schedule(t, [&] { order.push_back(1); });
  q.schedule(t, [&] { order.push_back(2); });
  ASSERT_EQ(q.stage_due_batch(), 3u);
  EXPECT_TRUE(q.cancel(victim));  // cancel while staged, before its pop
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_FALSE(q.cancel(victim));  // spent handle stays spent
}

TEST(EventQueueBatch, CancelFromInsideBatchCallback) {
  // The in-simulation shape: a same-tick event cancels a peer that is
  // already staged behind it (e.g. a packet arrival cancelling a timeout).
  EventQueue q;
  std::vector<int> order;
  const Time t = Time::from_seconds(1.0);
  EventId timeout = 0;
  q.schedule(t, [&] {
    order.push_back(0);
    EXPECT_TRUE(q.cancel(timeout));
  });
  timeout = q.schedule(t, [&] { order.push_back(1); });
  q.schedule(t, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(EventQueueBatch, NextTimeSeesStagedBatch) {
  EventQueue q;
  const Time t = Time::from_seconds(1.0);
  q.schedule(t, [] {});
  q.schedule(Time::from_seconds(2.0), [] {});
  q.stage_due_batch();
  EXPECT_EQ(q.next_time(), t);  // staged entries still count
  q.pop();
  EXPECT_EQ(q.next_time(), Time::from_seconds(2.0));
}

TEST(EventQueueBatch, PendingTaggedMatchesPreBatchEnumeration) {
  // Property: on a randomized schedule, pending_tagged() enumerates the
  // same (time, seq) stream whether or not a batch is staged — staging is
  // invisible to checkpoint enumeration.
  EventQueue q;
  std::uint64_t x = 987654321;
  for (int i = 0; i < 300; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    // Coarse buckets force plenty of same-tick collisions.
    const auto t = static_cast<std::int64_t>(x % 16);
    q.schedule(Time::from_ticks(t), [] {}, EventTag{});
  }
  const auto before = q.pending_tagged();
  ASSERT_EQ(before.size(), 300u);
  q.stage_due_batch();
  const auto after = q.pending_tagged();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].when, before[i].when) << "index " << i;
    EXPECT_EQ(after[i].seq, before[i].seq) << "index " << i;
  }
  // Execution order equals enumeration order.
  std::size_t k = 0;
  Time prev = Time::zero();
  while (!q.empty()) {
    const Time cur = q.pop().when;
    EXPECT_EQ(cur, before[k].when) << "pop " << k;
    EXPECT_GE(cur, prev);
    prev = cur;
    ++k;
  }
  EXPECT_EQ(k, before.size());
}

TEST(EventQueueBatch, BatchedStreamMatchesReferenceOrdering) {
  // Differential check: run the same randomized schedule through the queue
  // and through a plain stable-sorted reference; the (time, seq) streams
  // must be identical, including mid-drain same-tick insertions.
  EventQueue q;
  std::vector<std::pair<std::int64_t, int>> reference;  // (ticks, label)
  std::vector<int> got;
  std::uint64_t x = 5551212;
  int label = 0;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto t = static_cast<std::int64_t>(x % 32);
    const int my_label = label++;
    reference.emplace_back(t, my_label);
    q.schedule(Time::from_ticks(t), [&got, my_label] {
      got.push_back(my_label);
    });
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(got[i], reference[i].second) << "position " << i;
  }
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<std::int64_t> times;
  // Deterministic pseudo-random times via a simple LCG.
  std::uint64_t x = 12345;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    times.push_back(static_cast<std::int64_t>(x % 100000));
  }
  for (const auto t : times) q.schedule(Time::from_ticks(t), [] {});
  Time prev = Time::zero();
  while (!q.empty()) {
    const Time cur = q.pop().when;
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace imobif::sim
