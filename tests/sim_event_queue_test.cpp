#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace imobif::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), Time::infinity());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::from_seconds(3.0), [&] { order.push_back(3); });
  q.schedule(Time::from_seconds(1.0), [&] { order.push_back(1); });
  q.schedule(Time::from_seconds(2.0), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  const Time t = Time::from_seconds(1.0);
  for (int i = 0; i < 5; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopReturnsScheduledTime) {
  EventQueue q;
  q.schedule(Time::from_seconds(7.5), [] {});
  EXPECT_EQ(q.pop().when, Time::from_seconds(7.5));
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  q.schedule(Time::from_seconds(5.0), [] {});
  q.schedule(Time::from_seconds(2.0), [] {});
  EXPECT_EQ(q.next_time(), Time::from_seconds(2.0));
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(Time::from_seconds(1.0), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::infinity());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(Time::from_seconds(1.0), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.schedule(Time::from_seconds(1.0), [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::from_seconds(1.0), [&] { order.push_back(1); });
  const EventId mid =
      q.schedule(Time::from_seconds(2.0), [&] { order.push_back(2); });
  q.schedule(Time::from_seconds(3.0), [&] { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(Time::from_seconds(1.0), [] {});
  q.schedule(Time::from_seconds(2.0), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<std::int64_t> times;
  // Deterministic pseudo-random times via a simple LCG.
  std::uint64_t x = 12345;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    times.push_back(static_cast<std::int64_t>(x % 100000));
  }
  for (const auto t : times) q.schedule(Time::from_ticks(t), [] {});
  Time prev = Time::zero();
  while (!q.empty()) {
    const Time cur = q.pop().when;
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace imobif::sim
