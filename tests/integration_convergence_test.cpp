// End-to-end convergence properties of the two mobility strategies — the
// behaviours Figure 5 of the paper visualizes.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/segment.hpp"
#include "test_helpers.hpp"

namespace imobif::core {
namespace {

using test::default_flow;
using test::make_harness;
using util::Joules;
using util::Seconds;

// A visibly crooked 6-node path; hops stay within the 180 m radio range.
std::vector<geom::Vec2> crooked_path() {
  return {{0, 0},    {130, 70},  {260, -40},
          {390, 60}, {520, -50}, {650, 0}};
}

std::vector<net::NodeId> relays(const test::Harness& h) {
  std::vector<net::NodeId> out;
  for (net::NodeId id = 1; id + 1 < h.network->node_count(); ++id) {
    out.push_back(id);
  }
  return out;
}

TEST(MinEnergyConvergence, RelaysConvergeToSourceDestLine) {
  test::HarnessOptions opts;
  opts.mode = MobilityMode::kCostUnaware;  // unconditional movement
  auto h = make_harness(crooked_path(), opts);
  h.net().warmup(Seconds{25.0});

  const geom::Segment line{h.net().node(0).position(),
                           h.net().node(5).position()};
  double initial_offline = 0.0;
  for (const auto id : relays(h)) {
    initial_offline =
        std::max(initial_offline, line.distance_to(h.net().node(id).position()));
  }
  ASSERT_GT(initial_offline, 30.0);  // the path really is crooked

  net::FlowSpec spec = default_flow(h.net(), 8192.0 * 2000);
  spec.initially_enabled = true;
  h.net().start_flow(spec);
  h.net().run_flows(Seconds{3000.0});

  for (const auto id : relays(h)) {
    EXPECT_LT(line.distance_to(h.net().node(id).position()), 2.0)
        << "relay " << id << " did not reach the line";
  }
}

TEST(MinEnergyConvergence, RelaysEndEvenlySpaced) {
  test::HarnessOptions opts;
  opts.mode = MobilityMode::kCostUnaware;
  auto h = make_harness(crooked_path(), opts);
  h.net().warmup(Seconds{25.0});
  net::FlowSpec spec = default_flow(h.net(), 8192.0 * 3000);
  spec.initially_enabled = true;
  h.net().start_flow(spec);
  h.net().run_flows(Seconds{4000.0});

  // Hop lengths along the chain should be within a few meters of D/5.
  const double total =
      geom::distance(h.net().node(0).position(), h.net().node(5).position());
  for (net::NodeId id = 0; id + 1 < 6; ++id) {
    const double hop = geom::distance(h.net().node(id).position(),
                                      h.net().node(id + 1).position());
    EXPECT_NEAR(hop, total / 5.0, total * 0.05)
        << "hop " << id << " -> " << id + 1;
  }
}

TEST(MinEnergyConvergence, SteadyStateReducesPerPacketCost) {
  // After convergence the network must spend less transmit energy per
  // packet than it did on the first packet.
  test::HarnessOptions opts;
  opts.mode = MobilityMode::kCostUnaware;
  auto h = make_harness(crooked_path(), opts);
  h.net().warmup(Seconds{25.0});
  net::FlowSpec spec = default_flow(h.net(), 8192.0 * 2000);
  spec.initially_enabled = true;
  h.net().start_flow(spec);
  h.net().run_flows(Seconds{3000.0});
  ASSERT_TRUE(h.net().progress(1).completed);

  // Baseline (static) energy for the same workload.
  test::HarnessOptions base_opts;
  base_opts.mode = MobilityMode::kNoMobility;
  auto base = make_harness(crooked_path(), base_opts);
  base.net().warmup(Seconds{25.0});
  base.net().start_flow(default_flow(base.net(), 8192.0 * 2000));
  base.net().run_flows(Seconds{3000.0});
  ASSERT_TRUE(base.net().progress(1).completed);

  EXPECT_LT(h.net().total_transmit_energy(),
            base.net().total_transmit_energy());
}

TEST(MaxLifetimeConvergence, HopLengthsFollowResidualEnergy) {
  // Theorem 1: at steady state, hop length must grow with the upstream
  // node's residual energy. Build a line where relay energies alternate
  // and verify hop ordering after convergence.
  std::vector<geom::Vec2> positions{
      {0, 0}, {130, 0}, {260, 0}, {390, 0}, {520, 0}};
  test::HarnessOptions opts;
  opts.mode = MobilityMode::kCostUnaware;  // unconditional strategy motion
  opts.k = 0.0;  // isolate the placement rule from energy death
  auto h = make_harness(positions, opts);
  // Rich relay 1, poor relay 2, rich relay 3.
  h.net().node(1).battery().recharge(Joules{2000.0});
  h.net().node(2).battery().recharge(Joules{200.0});
  h.net().node(3).battery().recharge(Joules{2000.0});
  h.net().warmup(Seconds{25.0});

  net::FlowSpec spec =
      default_flow(h.net(), 8192.0 * 2000, net::StrategyId::kMaxLifetime);
  spec.initially_enabled = true;
  h.net().start_flow(spec);
  h.net().run_flows(Seconds{3000.0});

  // Hops: 0->1 (rich src 2000 vs rich 2000), 1->2 (rich prev),
  // 2->3 (poor prev), 3->4.
  const auto hop = [&](net::NodeId a, net::NodeId b) {
    return geom::distance(h.net().node(a).position(),
                          h.net().node(b).position());
  };
  // The poor node 2's outgoing hop must be the shortest of the interior
  // hops; its incoming hop (paid by rich node 1) must be longer.
  EXPECT_LT(hop(2, 3), hop(1, 2));
  EXPECT_LT(hop(2, 3), hop(3, 4));
}

TEST(MaxLifetimeConvergence, DiffersFromMinEnergyPlacement) {
  // Figure 5(b) vs 5(c): with unequal energies the two strategies settle
  // on different configurations.
  std::vector<geom::Vec2> positions{{0, 0}, {150, 40}, {300, -40}, {450, 0}};
  auto run = [&](net::StrategyId strategy) {
    test::HarnessOptions opts;
    opts.mode = MobilityMode::kCostUnaware;
    opts.k = 0.0;
    auto h = make_harness(positions, opts);
    h.net().node(1).battery().recharge(Joules{3000.0});
    h.net().node(2).battery().recharge(Joules{300.0});
    h.net().warmup(Seconds{25.0});
    net::FlowSpec spec = default_flow(h.net(), 8192.0 * 1500, strategy);
    spec.initially_enabled = true;
    h.net().start_flow(spec);
    h.net().run_flows(Seconds{2500.0});
    return h.net().positions();
  };
  const auto min_energy = run(net::StrategyId::kMinTotalEnergy);
  const auto lifetime = run(net::StrategyId::kMaxLifetime);
  // Both on the line...
  const geom::Segment line{{0, 0}, {450, 0}};
  EXPECT_LT(line.distance_to(min_energy[1]), 3.0);
  EXPECT_LT(line.distance_to(lifetime[1]), 3.0);
  // ...but at different stations.
  EXPECT_GT(geom::distance(min_energy[1], lifetime[1]), 10.0);
  EXPECT_GT(geom::distance(min_energy[2], lifetime[2]), 10.0);
}

TEST(EnergyConservation, DrawsBalanceAcrossTheRun) {
  test::HarnessOptions opts;
  opts.mode = MobilityMode::kCostUnaware;
  opts.charge_hello_energy = true;
  auto h = make_harness(crooked_path(), opts);
  h.net().warmup(Seconds{25.0});
  net::FlowSpec spec = default_flow(h.net(), 8192.0 * 300);
  spec.initially_enabled = true;
  h.net().start_flow(spec);
  h.net().run_flows(Seconds{600.0});

  for (std::size_t i = 0; i < h.net().node_count(); ++i) {
    const auto& b = h.net().node(static_cast<net::NodeId>(i)).battery();
    EXPECT_NEAR(b.initial().value(),
                (b.residual() + b.consumed_total()).value(), 1e-6);
    EXPECT_NEAR(b.consumed_total().value(),
                (b.consumed_transmit() + b.consumed_move() +
                 b.consumed_other())
                    .value(),
                1e-6);
  }
  // Movement energy equals k times distance moved.
  EXPECT_NEAR(h.net().total_movement_energy().value(),
              0.5 * h.policy->total_distance_moved().value(), 1e-6);
}

}  // namespace
}  // namespace imobif::core
