// JSON writer: escaping, nested objects/arrays, number round-tripping.
#include <gtest/gtest.h>

#include <limits>

#include "util/check.hpp"
#include "util/json.hpp"

namespace imobif::util {
namespace {

TEST(Json, ScalarSerialization) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(std::string("hi")).dump(), "\"hi\"");
}

TEST(Json, RoundNumbersSerializeShortest) {
  EXPECT_EQ(Json(0.0).dump(), "0");
  EXPECT_EQ(Json(1.0).dump(), "1");
  EXPECT_EQ(Json(-3.0).dump(), "-3");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json(0.1).dump(), "0.1");  // shortest round-trip, not 0.1000...
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-9007199254740993}).dump(),
            "-9007199254740993");  // past 2^53: int path keeps full precision
  EXPECT_EQ(Json(std::uint64_t{18446744073709551615ULL}).dump(),
            "18446744073709551615");
}

// A non-finite double is a contract violation in checked builds (bad
// metrics must fail loudly); Release pins the silent `null` fallback so
// downstream JSON consumers never see a bare NaN token.
#if IMOBIF_CHECKS_ENABLED
TEST(JsonDeathTest, NonFiniteNumbersAbortWhenChecked) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(Json(std::numeric_limits<double>::quiet_NaN()),
               "non-finite double written to Json");
  EXPECT_DEATH(Json(std::numeric_limits<double>::infinity()),
               "non-finite double written to Json");
}
#else
TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}
#endif

TEST(Json, NumberToStringShortestRoundTrip) {
  EXPECT_EQ(Json::number_to_string(1.25), "1.25");
  // number_to_string is the raw formatter below the contract; it keeps the
  // null mapping in every mode.
  EXPECT_EQ(Json::number_to_string(std::numeric_limits<double>::quiet_NaN()),
            "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json("line\nbreak\ttab\r").dump(), "\"line\\nbreak\\ttab\\r\"");
  EXPECT_EQ(Json(std::string("ctrl\x01")).dump(), "\"ctrl\\u0001\"");
  EXPECT_EQ(Json::escape("\b\f"), "\\b\\f");
}

TEST(Json, ArraysAndNesting) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json inner = Json::array();
  inner.push_back(3.5);
  arr.push_back(inner);
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.dump(), "[1,\"two\",[3.5]]");
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, ObjectsPreserveInsertionOrderAndOverwrite) {
  Json obj = Json::object();
  obj.set("zeta", 1);
  obj.set("alpha", 2);
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2}");
  obj.set("zeta", 9);  // overwrite in place, order unchanged
  EXPECT_EQ(obj.dump(), "{\"zeta\":9,\"alpha\":2}");
  EXPECT_EQ(obj.size(), 2u);

  ASSERT_NE(obj.find("alpha"), nullptr);
  EXPECT_EQ(obj.find("alpha")->dump(), "2");
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_EQ(Json::object().dump(), "{}");
}

TEST(Json, NestedObjectPrettyPrint) {
  Json obj = Json::object();
  obj.set("name", "sweep");
  Json stats = Json::object();
  stats.set("mean", 1.5);
  stats.set("count", 3);
  obj.set("stats", stats);
  Json values = Json::array();
  values.push_back(1);
  values.push_back(2);
  obj.set("values", values);

  EXPECT_EQ(obj.dump(2),
            "{\n"
            "  \"name\": \"sweep\",\n"
            "  \"stats\": {\n"
            "    \"mean\": 1.5,\n"
            "    \"count\": 3\n"
            "  },\n"
            "  \"values\": [\n"
            "    1,\n"
            "    2\n"
            "  ]\n"
            "}");
}

TEST(Json, TypeErrorsThrow) {
  Json scalar(1);
  EXPECT_THROW(scalar.push_back(2), std::logic_error);
  EXPECT_THROW(scalar.set("k", 2), std::logic_error);
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", 2), std::logic_error);
}

}  // namespace
}  // namespace imobif::util
