// NeighborTable and FlowTable unit tests.
#include <gtest/gtest.h>

#include "net/flow_table.hpp"
#include "net/neighbor_table.hpp"

namespace imobif::net {
namespace {

sim::Time sec(double s) { return sim::Time::from_seconds(s); }

using util::Joules;

TEST(NeighborTable, UpsertAndFind) {
  NeighborTable t(sec(30.0));
  t.upsert(5, {1.0, 2.0}, Joules{9.5}, sec(0.0));
  const auto hit = t.find(5, sec(10.0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 5u);
  EXPECT_EQ(hit->position, (geom::Vec2{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(hit->residual_energy.value(), 9.5);
}

TEST(NeighborTable, MissingIsAbsent) {
  NeighborTable t;
  EXPECT_FALSE(t.find(7, sec(0.0)).has_value());
}

TEST(NeighborTable, UpsertRefreshes) {
  NeighborTable t(sec(30.0));
  t.upsert(5, {1.0, 2.0}, Joules{9.5}, sec(0.0));
  t.upsert(5, {3.0, 4.0}, Joules{8.0}, sec(10.0));
  const auto hit = t.find(5, sec(15.0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->position, (geom::Vec2{3.0, 4.0}));
  EXPECT_DOUBLE_EQ(hit->residual_energy.value(), 8.0);
  EXPECT_EQ(hit->last_heard, sec(10.0));
  EXPECT_EQ(t.size(), 1u);
}

TEST(NeighborTable, ExpiredEntriesAreHidden) {
  NeighborTable t(sec(30.0));
  t.upsert(5, {1.0, 2.0}, Joules{9.5}, sec(0.0));
  EXPECT_TRUE(t.find(5, sec(30.0)).has_value());   // exactly at timeout: ok
  EXPECT_FALSE(t.find(5, sec(30.1)).has_value());  // past timeout: gone
}

TEST(NeighborTable, PurgeRemovesExpired) {
  NeighborTable t(sec(30.0));
  t.upsert(1, {0, 0}, Joules{1.0}, sec(0.0));
  t.upsert(2, {0, 0}, Joules{1.0}, sec(20.0));
  t.purge(sec(40.0));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.find(2, sec(40.0)).has_value());
}

TEST(NeighborTable, SnapshotExcludesExpired) {
  NeighborTable t(sec(30.0));
  t.upsert(1, {0, 0}, Joules{1.0}, sec(0.0));
  t.upsert(2, {0, 0}, Joules{1.0}, sec(25.0));
  const auto snap = t.snapshot(sec(40.0));
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].id, 2u);
}

TEST(NeighborTable, TimeoutAdjustable) {
  NeighborTable t(sec(30.0));
  t.upsert(1, {0, 0}, Joules{1.0}, sec(0.0));
  t.set_timeout(sec(100.0));
  EXPECT_TRUE(t.find(1, sec(90.0)).has_value());
}

TEST(FlowTable, GetOrCreateInitializesFromHeader) {
  FlowTable t;
  DataBody d;
  d.flow_id = 9;
  d.source = 1;
  d.destination = 5;
  d.strategy = StrategyId::kMaxLifetime;
  FlowEntry& e = t.get_or_create(d);
  EXPECT_EQ(e.id, 9u);
  EXPECT_EQ(e.source, 1u);
  EXPECT_EQ(e.destination, 5u);
  EXPECT_EQ(e.strategy, StrategyId::kMaxLifetime);
  EXPECT_EQ(e.prev, kInvalidNode);
  EXPECT_EQ(e.next, kInvalidNode);
}

TEST(FlowTable, GetOrCreateIsIdempotent) {
  FlowTable t;
  DataBody d;
  d.flow_id = 9;
  d.source = 1;
  d.destination = 5;
  FlowEntry& e1 = t.get_or_create(d);
  e1.next = 3;
  FlowEntry& e2 = t.get_or_create(d);
  EXPECT_EQ(&e1, &e2);
  EXPECT_EQ(e2.next, 3u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlowTable, FindReturnsNullWhenAbsent) {
  FlowTable t;
  EXPECT_EQ(t.find(1), nullptr);
  const FlowTable& ct = t;
  EXPECT_EQ(ct.find(1), nullptr);
}

TEST(FlowTable, EnsureCreatesBareEntry) {
  FlowTable t;
  FlowEntry& e = t.ensure(4);
  EXPECT_EQ(e.id, 4u);
  EXPECT_EQ(t.find(4), &e);
}

TEST(FlowTable, EraseRemoves) {
  FlowTable t;
  t.ensure(4);
  t.erase(4);
  EXPECT_EQ(t.find(4), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowTable, AllListsEveryEntry) {
  FlowTable t;
  t.ensure(1);
  t.ensure(2);
  t.ensure(3);
  EXPECT_EQ(t.all().size(), 3u);
}

}  // namespace
}  // namespace imobif::net
