// Model-zoo unit tests: trace parsing/interpolation, per-model motion and
// determinism, and the (rng, state) checkpoint contract (DESIGN.md §14).
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "mob/model.hpp"
#include "mob/params.hpp"
#include "mob/trace.hpp"

namespace imobif::mob {
namespace {

using geom::Vec2;
using util::Meters;
using util::Seconds;

std::vector<Vec2> square_positions() {
  return {Vec2{100.0, 100.0}, Vec2{900.0, 100.0}, Vec2{100.0, 900.0},
          Vec2{900.0, 900.0}, Vec2{500.0, 500.0}, Vec2{250.0, 750.0}};
}

ModelParams params_for(ModelId id) {
  ModelParams p;
  p.model = id;
  p.update_s = Seconds{1.0};
  p.speed_min = util::MetersPerSecond{0.5};
  p.speed_max = util::MetersPerSecond{2.0};
  p.pause_s = Seconds{2.0};
  p.group_count = 2;
  return p;
}

// --- trace parsing ---

TEST(MobTrace, ParsesCommentsBlanksAndInterpolates) {
  const Trace trace = parse_trace(
      "# header comment\n"
      "\n"
      "0 0 100 200 ; trailing comment\n"
      "0 10 300 400\n"
      "2 5 50 60\n");
  ASSERT_TRUE(trace.has(0));
  EXPECT_FALSE(trace.has(1));
  ASSERT_TRUE(trace.has(2));

  // Before / between / after the schedule.
  EXPECT_EQ(trace.position_at(0, Seconds{-1.0}), (Vec2{100.0, 200.0}));
  EXPECT_EQ(trace.position_at(0, Seconds{0.0}), (Vec2{100.0, 200.0}));
  EXPECT_EQ(trace.position_at(0, Seconds{5.0}), (Vec2{200.0, 300.0}));
  EXPECT_EQ(trace.position_at(0, Seconds{10.0}), (Vec2{300.0, 400.0}));
  EXPECT_EQ(trace.position_at(0, Seconds{99.0}), (Vec2{300.0, 400.0}));
  // Single-waypoint node parks forever.
  EXPECT_EQ(trace.position_at(2, Seconds{0.0}), (Vec2{50.0, 60.0}));
  EXPECT_EQ(trace.position_at(2, Seconds{1000.0}), (Vec2{50.0, 60.0}));
}

TEST(MobTrace, RejectsMalformedLinesWithLineNumbers) {
  const auto expect_fail = [](const std::string& text,
                              const std::string& needle) {
    try {
      parse_trace(text);
      FAIL() << "expected rejection of: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_fail("0 1 2\n", "line 1");                        // field count
  expect_fail("x 0 1 2\n", "bad node id");                 // node id
  expect_fail("0 zero 1 2\n", "bad time");                 // time
  expect_fail("0 0 nan 2\n", "bad x");                     // non-finite
  expect_fail("0 -1 1 2\n", "negative");                   // negative time
  expect_fail("0 5 1 2\n0 5 3 4\n", "strictly increasing");
  expect_fail("0 5 1 2\n0 4 3 4\n", "line 2");
  expect_fail("9999999999 0 1 2\n", "cap");                // node cap
}

TEST(MobTrace, PositionAtRequiresASchedule) {
  const Trace trace = parse_trace("1 0 5 5\n");
  EXPECT_THROW(trace.position_at(0, Seconds{0.0}), std::out_of_range);
  EXPECT_THROW(trace.position_at(7, Seconds{0.0}), std::out_of_range);
}

TEST(MobTrace, LoadTraceThrowsOnMissingFile) {
  EXPECT_THROW(load_trace("/nonexistent/imobif.trace"), std::runtime_error);
}

// --- model zoo ---

class MobModelSuite : public ::testing::TestWithParam<ModelId> {};

TEST_P(MobModelSuite, MovesNodesAndStaysInsideArena) {
  const std::vector<Vec2> initial = square_positions();
  const auto model =
      make_model(params_for(GetParam()), 42, Meters{1000.0}, initial);
  std::vector<Vec2> positions = initial;
  bool any_moved = false;
  for (int tick = 1; tick <= 50; ++tick) {
    model->step(Seconds{static_cast<double>(tick)}, Seconds{1.0}, positions);
    for (const Vec2& p : positions) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1000.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1000.0);
    }
    if (positions != initial) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST_P(MobModelSuite, SameSeedSamePath) {
  const std::vector<Vec2> initial = square_positions();
  const ModelParams p = params_for(GetParam());
  const auto a = make_model(p, 7, Meters{1000.0}, initial);
  const auto b = make_model(p, 7, Meters{1000.0}, initial);
  std::vector<Vec2> pa = initial;
  std::vector<Vec2> pb = initial;
  for (int tick = 1; tick <= 25; ++tick) {
    a->step(Seconds{static_cast<double>(tick)}, Seconds{1.0}, pa);
    b->step(Seconds{static_cast<double>(tick)}, Seconds{1.0}, pb);
    ASSERT_EQ(pa, pb) << "diverged at tick " << tick;
  }
}

// The checkpoint contract: (rng state, state()) restored into a fresh
// model reproduces the original's future positions exactly.
TEST_P(MobModelSuite, RngPlusStateRestoresMidFlight) {
  const std::vector<Vec2> initial = square_positions();
  const ModelParams p = params_for(GetParam());
  const auto original = make_model(p, 99, Meters{1000.0}, initial);
  std::vector<Vec2> positions = initial;
  for (int tick = 1; tick <= 10; ++tick) {
    original->step(Seconds{static_cast<double>(tick)}, Seconds{1.0},
                   positions);
  }

  const auto restored = make_model(p, 1, Meters{1000.0}, initial);
  restored->rng().set_state(original->rng().state());
  restored->restore_state(original->state());

  std::vector<Vec2> pa = positions;
  std::vector<Vec2> pb = positions;
  for (int tick = 11; tick <= 30; ++tick) {
    original->step(Seconds{static_cast<double>(tick)}, Seconds{1.0}, pa);
    restored->step(Seconds{static_cast<double>(tick)}, Seconds{1.0}, pb);
    ASSERT_EQ(pa, pb) << "diverged at tick " << tick;
  }
}

TEST_P(MobModelSuite, RestoreStateRejectsWrongSize) {
  const auto model = make_model(params_for(GetParam()), 3, Meters{1000.0},
                                square_positions());
  std::vector<double> state = model->state();
  state.push_back(0.0);
  EXPECT_THROW(model->restore_state(state), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Zoo, MobModelSuite,
                         ::testing::Values(ModelId::kRandomWaypoint,
                                           ModelId::kGaussMarkov,
                                           ModelId::kGroup));

TEST(MobModel, GroupMembersStayWithinRadiusOfReference) {
  ModelParams p = params_for(ModelId::kGroup);
  p.group_radius_m = Meters{50.0};
  const std::vector<Vec2> initial = square_positions();
  const auto model = make_model(p, 5, Meters{1000.0}, initial);
  std::vector<Vec2> positions = initial;
  std::vector<Vec2> previous = positions;
  for (int tick = 1; tick <= 100; ++tick) {
    model->step(Seconds{static_cast<double>(tick)}, Seconds{1.0}, positions);
    // Group cohesion: per-tick displacement is bounded by the reference
    // speed plus the jitter, never a cross-arena teleport.
    for (std::size_t i = 0; i < positions.size(); ++i) {
      EXPECT_LT(geom::distance(positions[i], previous[i]),
                p.speed_max.value() * (1.0 + 2.0) + 1e-9);
    }
    previous = positions;
  }
}

TEST(MobModel, TraceReplayIsAPureFunctionOfTime) {
  ModelParams p;
  p.model = ModelId::kTrace;
  p.trace_file = "unused";  // construct via parse, not the factory
  const Trace trace = parse_trace("0 0 0 0\n0 100 1000 0\n");
  // Factory needs a real file; test the interpolation contract directly.
  std::vector<Vec2> positions = {Vec2{123.0, 456.0}, Vec2{50.0, 50.0}};
  EXPECT_EQ(trace.position_at(0, Seconds{25.0}), (Vec2{250.0, 0.0}));
  EXPECT_FALSE(trace.has(1));
  (void)positions;
}

TEST(MobModel, FactoryRejectsDisabledParams) {
  EXPECT_THROW(make_model(ModelParams{}, 1, Meters{1000.0}, {}),
               std::invalid_argument);
}

TEST(MobParams, StringRoundTrip) {
  for (const ModelId id :
       {ModelId::kNone, ModelId::kRandomWaypoint, ModelId::kGaussMarkov,
        ModelId::kGroup, ModelId::kTrace}) {
    EXPECT_EQ(model_from_string(to_string(id)), id);
  }
  EXPECT_EQ(model_from_string("rwp"), ModelId::kRandomWaypoint);
  EXPECT_EQ(model_from_string("rpgm"), ModelId::kGroup);
  EXPECT_THROW(model_from_string("teleport"), std::invalid_argument);
}

TEST(MobParams, ValidateCatchesBadRanges) {
  ModelParams p = params_for(ModelId::kRandomWaypoint);
  p.update_s = Seconds{0.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = params_for(ModelId::kGaussMarkov);
  p.gm_alpha = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = params_for(ModelId::kTrace);
  EXPECT_THROW(p.validate(), std::invalid_argument);  // empty trace_file
  p.trace_file = "has # comment";
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.trace_file = " leading-space";
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.trace_file = "/tmp/fine.trace";
  EXPECT_NO_THROW(p.validate());

  // Disabled params never validate their knobs.
  ModelParams off;
  off.update_s = Seconds{-1.0};
  EXPECT_NO_THROW(off.validate());
}

}  // namespace
}  // namespace imobif::mob
