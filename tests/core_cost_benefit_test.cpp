#include "core/cost_benefit.hpp"

#include <gtest/gtest.h>

namespace imobif::core {
namespace {

using util::Bits;
using util::Joules;
using util::Meters;

energy::RadioEnergyModel radio() {
  energy::RadioParams p;
  p.a = 1e-7;
  p.b = 1e-10;
  p.alpha = 2.0;
  return energy::RadioEnergyModel(p);
}

energy::MobilityEnergyModel mobility(double k = 0.5) {
  energy::MobilityParams p;
  p.k = k;
  p.max_step_m = 1.0;
  return energy::MobilityEnergyModel(p);
}

TEST(EvaluateLocal, MatchesFigure1Formulas) {
  const auto r = radio();
  const auto m = mobility(0.5);
  const Joules e{100.0};
  const Bits L{1e6};
  const geom::Vec2 x{0, 0}, xp{30, 0}, next{150, 0};

  const LocalPerformance p =
      evaluate_local(r, m, e, L, x, xp, next, /*cap_bits=*/false);

  const Meters d_now{150.0}, d_after{120.0}, move{30.0};
  EXPECT_DOUBLE_EQ(p.resi_nomob.value(),
                   (e - r.transmit_energy(d_now, L)).value());
  EXPECT_DOUBLE_EQ(p.bits_nomob.value(), (e / r.power_per_bit(d_now)).value());
  EXPECT_DOUBLE_EQ(
      p.resi_mob.value(),
      (e - r.transmit_energy(d_after, L) - util::JoulesPerMeter{0.5} * move)
          .value());
  EXPECT_DOUBLE_EQ(p.bits_mob.value(),
                   ((e - util::JoulesPerMeter{0.5} * move) /
                    r.power_per_bit(d_after))
                       .value());
}

TEST(EvaluateLocal, CapBindsBothAlternatives) {
  const auto r = radio();
  const auto m = mobility(0.5);
  // Plenty of energy: uncapped bits far exceed the 1000-bit residual flow.
  const LocalPerformance p =
      evaluate_local(r, m, Joules{100.0}, Bits{1000.0}, {0, 0}, {10, 0},
                     {150, 0},
                     /*cap_bits=*/true);
  EXPECT_DOUBLE_EQ(p.bits_mob.value(), 1000.0);
  EXPECT_DOUBLE_EQ(p.bits_nomob.value(), 1000.0);
}

TEST(EvaluateLocal, CapDoesNotBindWeakNode) {
  const auto r = radio();
  const auto m = mobility(0.5);
  // Tiny battery: capacity below the residual flow, cap irrelevant.
  const LocalPerformance capped =
      evaluate_local(r, m, Joules{1e-3}, Bits{1e9}, {0, 0}, {10, 0}, {150, 0},
                     /*cap_bits=*/true);
  const LocalPerformance raw =
      evaluate_local(r, m, Joules{1e-3}, Bits{1e9}, {0, 0}, {10, 0}, {150, 0},
                     /*cap_bits=*/false);
  EXPECT_DOUBLE_EQ(capped.bits_nomob.value(), raw.bits_nomob.value());
  EXPECT_DOUBLE_EQ(capped.bits_mob.value(), raw.bits_mob.value());
}

TEST(EvaluateLocal, MoveCostExceedingEnergyClampsBits) {
  const auto r = radio();
  const auto m = mobility(1.0);
  // Moving 200 m at 1 J/m with only 50 J: bits_mob must clamp to zero, not
  // go negative; resi_mob goes negative (the deficit signal).
  const LocalPerformance p =
      evaluate_local(r, m, Joules{50.0}, Bits{1e6}, {0, 0}, {200, 0}, {250, 0},
                     /*cap_bits=*/false);
  EXPECT_DOUBLE_EQ(p.bits_mob.value(), 0.0);
  EXPECT_LT(p.resi_mob, Joules{0.0});
}

TEST(EvaluateLocal, NoMoveMeansAlternativesCoincide) {
  const auto r = radio();
  const auto m = mobility(0.5);
  const geom::Vec2 x{10, 20};
  const LocalPerformance p =
      evaluate_local(r, m, Joules{42.0}, Bits{5e5}, x, x, {150, 20}, true);
  EXPECT_DOUBLE_EQ(p.bits_mob.value(), p.bits_nomob.value());
  EXPECT_DOUBLE_EQ(p.resi_mob.value(), p.resi_nomob.value());
}

TEST(EvaluateSource, AlternativesAlwaysCoincide) {
  const auto r = radio();
  const LocalPerformance p =
      evaluate_source(r, Joules{42.0}, Bits{5e5}, {0, 0}, {150, 0}, true);
  EXPECT_DOUBLE_EQ(p.bits_mob.value(), p.bits_nomob.value());
  EXPECT_DOUBLE_EQ(p.resi_mob.value(), p.resi_nomob.value());
  EXPECT_DOUBLE_EQ(
      p.resi_nomob.value(),
      (Joules{42.0} - r.transmit_energy(Meters{150.0}, Bits{5e5})).value());
}

TEST(EvaluateHop, UsesPlannedEndpointsForMobility) {
  const auto r = radio();
  // Sender at (0,0) planning to hold (0,0); receiver at (150,0) planning to
  // move to (100,0): the planned hop is 100 m.
  const LocalPerformance p = evaluate_hop(
      r, /*sender_energy=*/Joules{50.0}, /*pending_move=*/Joules{0.0}, {0, 0},
      {0, 0}, {150, 0}, {100, 0}, /*residual_bits=*/Bits{1e9},
      /*cap_bits=*/false);
  EXPECT_DOUBLE_EQ(p.bits_nomob.value(),
                   (Joules{50.0} / r.power_per_bit(Meters{150.0})).value());
  EXPECT_DOUBLE_EQ(p.bits_mob.value(),
                   (Joules{50.0} / r.power_per_bit(Meters{100.0})).value());
  EXPECT_GT(p.bits_mob, p.bits_nomob);
}

TEST(EvaluateHop, SenderMoveCostDebitsMobilityAlternative) {
  const auto r = radio();
  const LocalPerformance p =
      evaluate_hop(r, Joules{50.0}, /*pending_move=*/Joules{20.0}, {0, 0},
                   {50, 0}, {150, 0}, {150, 0}, Bits{1e6}, false);
  EXPECT_DOUBLE_EQ(p.resi_mob.value(),
                   (Joules{50.0} - Joules{20.0} -
                    r.transmit_energy(Meters{100.0}, Bits{1e6}))
                       .value());
  EXPECT_DOUBLE_EQ(p.bits_mob.value(),
                   (Joules{30.0} / r.power_per_bit(Meters{100.0})).value());
}

TEST(EvaluateHop, PendingMoveBeyondEnergyClampsBits) {
  const auto r = radio();
  const LocalPerformance p =
      evaluate_hop(r, Joules{10.0}, Joules{25.0}, {0, 0}, {50, 0}, {150, 0},
                   {150, 0}, Bits{1e6}, false);
  EXPECT_DOUBLE_EQ(p.bits_mob.value(), 0.0);
  EXPECT_LT(p.resi_mob, Joules{0.0});
}

TEST(EvaluateHop, CapAppliesToBothAlternatives) {
  const auto r = radio();
  const LocalPerformance p =
      evaluate_hop(r, Joules{1e6}, Joules{0.0}, {0, 0}, {0, 0}, {150, 0},
                   {150, 0},
                   /*residual_bits=*/Bits{500.0}, true);
  EXPECT_DOUBLE_EQ(p.bits_mob.value(), 500.0);
  EXPECT_DOUBLE_EQ(p.bits_nomob.value(), 500.0);
}

TEST(EvaluateHop, TotalEnergyTradeoffEmergesFromSum) {
  // Sanity for the hop-receiver design: summing (resi_mob - resi_nomob)
  // across hops equals transmission savings minus movement cost.
  const auto r = radio();
  const Bits L{1e6};
  // Two hops: A(0,0) -> B(150,0) -> C(300,0); B plans to move to (140,0)
  // at a pending cost of 5 J.
  const LocalPerformance hop1 = evaluate_hop(
      r, Joules{100.0}, Joules{0.0}, {0, 0}, {0, 0}, {150, 0}, {140, 0}, L,
      false);
  const LocalPerformance hop2 = evaluate_hop(
      r, Joules{100.0}, Joules{5.0}, {150, 0}, {140, 0}, {300, 0}, {300, 0},
      L, false);
  const Joules delta = (hop1.resi_mob - hop1.resi_nomob) +
                       (hop2.resi_mob - hop2.resi_nomob);
  const Joules savings = (r.transmit_energy(Meters{150.0}, L) -
                          r.transmit_energy(Meters{140.0}, L)) +
                         (r.transmit_energy(Meters{150.0}, L) -
                          r.transmit_energy(Meters{160.0}, L));
  EXPECT_NEAR(delta.value(), (savings - Joules{5.0}).value(), 1e-9);
}

}  // namespace
}  // namespace imobif::core
