#include "core/cost_benefit.hpp"

#include <gtest/gtest.h>

namespace imobif::core {
namespace {

energy::RadioEnergyModel radio() {
  energy::RadioParams p;
  p.a = 1e-7;
  p.b = 1e-10;
  p.alpha = 2.0;
  return energy::RadioEnergyModel(p);
}

energy::MobilityEnergyModel mobility(double k = 0.5) {
  energy::MobilityParams p;
  p.k = k;
  p.max_step_m = 1.0;
  return energy::MobilityEnergyModel(p);
}

TEST(EvaluateLocal, MatchesFigure1Formulas) {
  const auto r = radio();
  const auto m = mobility(0.5);
  const double e = 100.0;
  const double L = 1e6;
  const geom::Vec2 x{0, 0}, xp{30, 0}, next{150, 0};

  const LocalPerformance p =
      evaluate_local(r, m, e, L, x, xp, next, /*cap_bits=*/false);

  const double d_now = 150.0, d_after = 120.0, move = 30.0;
  EXPECT_DOUBLE_EQ(p.resi_nomob, e - r.transmit_energy(d_now, L));
  EXPECT_DOUBLE_EQ(p.bits_nomob, e / r.power_per_bit(d_now));
  EXPECT_DOUBLE_EQ(p.resi_mob,
                   e - r.transmit_energy(d_after, L) - 0.5 * move);
  EXPECT_DOUBLE_EQ(p.bits_mob,
                   (e - 0.5 * move) / r.power_per_bit(d_after));
}

TEST(EvaluateLocal, CapBindsBothAlternatives) {
  const auto r = radio();
  const auto m = mobility(0.5);
  // Plenty of energy: uncapped bits far exceed the 1000-bit residual flow.
  const LocalPerformance p = evaluate_local(r, m, 100.0, 1000.0, {0, 0},
                                            {10, 0}, {150, 0},
                                            /*cap_bits=*/true);
  EXPECT_DOUBLE_EQ(p.bits_mob, 1000.0);
  EXPECT_DOUBLE_EQ(p.bits_nomob, 1000.0);
}

TEST(EvaluateLocal, CapDoesNotBindWeakNode) {
  const auto r = radio();
  const auto m = mobility(0.5);
  // Tiny battery: capacity below the residual flow, cap irrelevant.
  const LocalPerformance capped = evaluate_local(
      r, m, 1e-3, 1e9, {0, 0}, {10, 0}, {150, 0}, /*cap_bits=*/true);
  const LocalPerformance raw = evaluate_local(
      r, m, 1e-3, 1e9, {0, 0}, {10, 0}, {150, 0}, /*cap_bits=*/false);
  EXPECT_DOUBLE_EQ(capped.bits_nomob, raw.bits_nomob);
  EXPECT_DOUBLE_EQ(capped.bits_mob, raw.bits_mob);
}

TEST(EvaluateLocal, MoveCostExceedingEnergyClampsBits) {
  const auto r = radio();
  const auto m = mobility(1.0);
  // Moving 200 m at 1 J/m with only 50 J: bits_mob must clamp to zero, not
  // go negative; resi_mob goes negative (the deficit signal).
  const LocalPerformance p = evaluate_local(r, m, 50.0, 1e6, {0, 0},
                                            {200, 0}, {250, 0},
                                            /*cap_bits=*/false);
  EXPECT_DOUBLE_EQ(p.bits_mob, 0.0);
  EXPECT_LT(p.resi_mob, 0.0);
}

TEST(EvaluateLocal, NoMoveMeansAlternativesCoincide) {
  const auto r = radio();
  const auto m = mobility(0.5);
  const geom::Vec2 x{10, 20};
  const LocalPerformance p =
      evaluate_local(r, m, 42.0, 5e5, x, x, {150, 20}, true);
  EXPECT_DOUBLE_EQ(p.bits_mob, p.bits_nomob);
  EXPECT_DOUBLE_EQ(p.resi_mob, p.resi_nomob);
}

TEST(EvaluateSource, AlternativesAlwaysCoincide) {
  const auto r = radio();
  const LocalPerformance p =
      evaluate_source(r, 42.0, 5e5, {0, 0}, {150, 0}, true);
  EXPECT_DOUBLE_EQ(p.bits_mob, p.bits_nomob);
  EXPECT_DOUBLE_EQ(p.resi_mob, p.resi_nomob);
  EXPECT_DOUBLE_EQ(p.resi_nomob,
                   42.0 - r.transmit_energy(150.0, 5e5));
}

TEST(EvaluateHop, UsesPlannedEndpointsForMobility) {
  const auto r = radio();
  // Sender at (0,0) planning to hold (0,0); receiver at (150,0) planning to
  // move to (100,0): the planned hop is 100 m.
  const LocalPerformance p = evaluate_hop(
      r, /*sender_energy=*/50.0, /*pending_move=*/0.0, {0, 0}, {0, 0},
      {150, 0}, {100, 0}, /*residual_bits=*/1e9, /*cap_bits=*/false);
  EXPECT_DOUBLE_EQ(p.bits_nomob, 50.0 / r.power_per_bit(150.0));
  EXPECT_DOUBLE_EQ(p.bits_mob, 50.0 / r.power_per_bit(100.0));
  EXPECT_GT(p.bits_mob, p.bits_nomob);
}

TEST(EvaluateHop, SenderMoveCostDebitsMobilityAlternative) {
  const auto r = radio();
  const LocalPerformance p = evaluate_hop(
      r, 50.0, /*pending_move=*/20.0, {0, 0}, {50, 0}, {150, 0}, {150, 0},
      1e6, false);
  EXPECT_DOUBLE_EQ(p.resi_mob,
                   50.0 - 20.0 - r.transmit_energy(100.0, 1e6));
  EXPECT_DOUBLE_EQ(p.bits_mob, 30.0 / r.power_per_bit(100.0));
}

TEST(EvaluateHop, PendingMoveBeyondEnergyClampsBits) {
  const auto r = radio();
  const LocalPerformance p =
      evaluate_hop(r, 10.0, 25.0, {0, 0}, {50, 0}, {150, 0}, {150, 0},
                   1e6, false);
  EXPECT_DOUBLE_EQ(p.bits_mob, 0.0);
  EXPECT_LT(p.resi_mob, 0.0);
}

TEST(EvaluateHop, CapAppliesToBothAlternatives) {
  const auto r = radio();
  const LocalPerformance p = evaluate_hop(r, 1e6, 0.0, {0, 0}, {0, 0},
                                          {150, 0}, {150, 0},
                                          /*residual_bits=*/500.0, true);
  EXPECT_DOUBLE_EQ(p.bits_mob, 500.0);
  EXPECT_DOUBLE_EQ(p.bits_nomob, 500.0);
}

TEST(EvaluateHop, TotalEnergyTradeoffEmergesFromSum) {
  // Sanity for the hop-receiver design: summing (resi_mob - resi_nomob)
  // across hops equals transmission savings minus movement cost.
  const auto r = radio();
  const double L = 1e6;
  // Two hops: A(0,0) -> B(150,0) -> C(300,0); B plans to move to (140,0)
  // at a pending cost of 5 J.
  const LocalPerformance hop1 =
      evaluate_hop(r, 100.0, 0.0, {0, 0}, {0, 0}, {150, 0}, {140, 0}, L,
                   false);
  const LocalPerformance hop2 = evaluate_hop(r, 100.0, 5.0, {150, 0},
                                             {140, 0}, {300, 0}, {300, 0},
                                             L, false);
  const double delta = (hop1.resi_mob - hop1.resi_nomob) +
                       (hop2.resi_mob - hop2.resi_nomob);
  const double savings = (r.transmit_energy(150.0, L) -
                          r.transmit_energy(140.0, L)) +
                         (r.transmit_energy(150.0, L) -
                          r.transmit_energy(160.0, L));
  EXPECT_NEAR(delta, savings - 5.0, 1e-9);
}

}  // namespace
}  // namespace imobif::core
