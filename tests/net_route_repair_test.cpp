// Local route repair: when the link layer reports a failed transmit
// (typically a dead next hop), the sender re-resolves the route once and
// retries, and greedy routing skips dead candidates.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace imobif::net {
namespace {

using test::default_flow;
using test::make_harness;
using util::Bits;
using util::Joules;
using util::Meters;
using util::Seconds;

// A diamond: 0 can reach 3 via relay 1 (preferred, closer to the line) or
// relay 2 (fallback).
std::vector<geom::Vec2> diamond() {
  return {{0, 0}, {150, 10}, {140, -70}, {300, 0}};
}

TEST(RouteRepair, GreedySkipsDeadCandidates) {
  auto h = make_harness(diamond());
  h.net().warmup(Seconds{25.0});
  GreedyRouting routing(h.net().medium());
  ASSERT_EQ(routing.next_hop(h.net().node(0), 3), 1u);
  h.net().node(1).battery().draw(Joules{1e9}, energy::DrawKind::kOther);
  EXPECT_EQ(routing.next_hop(h.net().node(0), 3), 2u);
}

TEST(RouteRepair, FlowSurvivesRelayDeathMidFlow) {
  auto h = make_harness(diamond());
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 20));
  // Let a few packets flow through relay 1, then kill it *between*
  // packets (repair protects packets the sender still holds; a packet
  // physically in flight at death is lost — the paper's model has no
  // end-to-end retransmission).
  h.net().run_flows(Seconds{5.1});
  ASSERT_FALSE(h.net().progress(1).completed);
  ASSERT_GT(h.net().progress(1).packets_delivered, 2u);
  h.net().node(1).battery().draw(Joules{1e9}, energy::DrawKind::kOther);
  h.net().run_flows(Seconds{120.0});

  const FlowProgress& prog = h.net().progress(1);
  EXPECT_TRUE(prog.completed);
  EXPECT_EQ(prog.packets_delivered, prog.packets_emitted);
  // The source's pinned route now points at the fallback relay, which
  // actually relayed packets.
  EXPECT_EQ(h.net().node(0).flows().find(1)->next, 2u);
  EXPECT_GT(h.net().node(2).flows().find(1)->packets_relayed, 0u);
}

TEST(RouteRepair, NoAlternativeStillDrops) {
  // A pure chain: the only relay dies, repair finds nothing, the flow
  // stalls (and the stall window ends the run).
  auto h = make_harness({{0, 0}, {150, 0}, {300, 0}});
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 50));
  h.net().run_flows(Seconds{3.0});
  h.net().node(1).battery().draw(Joules{1e9}, energy::DrawKind::kOther);
  h.net().run_flows(Seconds{300.0}, /*stall_window=*/Seconds{30.0});
  EXPECT_FALSE(h.net().progress(1).completed);
  EXPECT_GT(h.net().total_data_drops(), 0u);
}

TEST(RouteRepair, DeadRelayAvoidedAtFlowStart) {
  // A relay already known dead is skipped by routing before the first
  // packet — no energy is wasted probing it.
  auto h = make_harness(diamond());
  h.net().warmup(Seconds{25.0});
  h.net().node(1).battery().draw(Joules{1e9}, energy::DrawKind::kOther);
  const Joules before = h.net().node(0).battery().consumed_transmit();
  h.net().start_flow(default_flow(h.net(), 8192.0));
  h.net().run_flows(Seconds{30.0});
  EXPECT_TRUE(h.net().progress(1).completed);
  const Joules spent =
      h.net().node(0).battery().consumed_transmit() - before;
  const Joules one_hop_to_2 = h.net().radio().transmit_energy(
      Meters{geom::distance({0, 0}, {140, -70})}, Bits{8192.0});
  EXPECT_NEAR(spent.value(), one_hop_to_2.value(), 1e-9);
}

TEST(RouteRepair, RepairChargesTheFailedAttempt) {
  // A relay that dies after the route is pinned costs the sender one
  // doomed transmission (the radio cannot know the receiver is gone)
  // before the repaired copy goes out — check both were paid for.
  auto h = make_harness(diamond());
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 2));
  h.net().run_flows(Seconds{1.2});  // first packet pinned the route through 1
  ASSERT_EQ(h.net().node(0).flows().find(1)->next, 1u);
  h.net().node(1).battery().draw(Joules{1e9}, energy::DrawKind::kOther);
  const Joules before = h.net().node(0).battery().consumed_transmit();
  h.net().run_flows(Seconds{60.0});
  EXPECT_TRUE(h.net().progress(1).completed);

  const Joules spent =
      h.net().node(0).battery().consumed_transmit() - before;
  const Joules one_hop_to_1 = h.net().radio().transmit_energy(
      Meters{geom::distance({0, 0}, {150, 10})}, Bits{8192.0});
  const Joules one_hop_to_2 = h.net().radio().transmit_energy(
      Meters{geom::distance({0, 0}, {140, -70})}, Bits{8192.0});
  // Second (and last) packet: failed attempt toward 1 + repaired copy
  // toward 2.
  EXPECT_NEAR(spent.value(), (one_hop_to_1 + one_hop_to_2).value(), 1e-9);
}

}  // namespace
}  // namespace imobif::net
