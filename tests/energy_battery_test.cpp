#include "energy/battery.hpp"

#include <gtest/gtest.h>

namespace imobif::energy {
namespace {

using util::Joules;

TEST(Battery, InitialState) {
  Battery b(Joules{10.0});
  EXPECT_DOUBLE_EQ(b.residual().value(), 10.0);
  EXPECT_DOUBLE_EQ(b.initial().value(), 10.0);
  EXPECT_FALSE(b.depleted());
  EXPECT_DOUBLE_EQ(b.consumed_total().value(), 0.0);
}

TEST(Battery, NegativeInitialThrows) {
  EXPECT_THROW(Battery(Joules{-1.0}), std::invalid_argument);
}

TEST(Battery, DrawReducesResidual) {
  Battery b(Joules{10.0});
  EXPECT_DOUBLE_EQ(b.draw(Joules{3.0}, DrawKind::kTransmit).value(), 3.0);
  EXPECT_DOUBLE_EQ(b.residual().value(), 7.0);
  EXPECT_DOUBLE_EQ(b.consumed_transmit().value(), 3.0);
  EXPECT_DOUBLE_EQ(b.consumed_total().value(), 3.0);
}

TEST(Battery, DrawByCategory) {
  Battery b(Joules{10.0});
  b.draw(Joules{1.0}, DrawKind::kTransmit);
  b.draw(Joules{2.0}, DrawKind::kMove);
  b.draw(Joules{3.0}, DrawKind::kOther);
  EXPECT_DOUBLE_EQ(b.consumed_transmit().value(), 1.0);
  EXPECT_DOUBLE_EQ(b.consumed_move().value(), 2.0);
  EXPECT_DOUBLE_EQ(b.consumed_other().value(), 3.0);
  EXPECT_DOUBLE_EQ(b.consumed_total().value(), 6.0);
}

TEST(Battery, OverdrawClampsToResidual) {
  Battery b(Joules{5.0});
  EXPECT_DOUBLE_EQ(b.draw(Joules{8.0}, DrawKind::kMove).value(), 5.0);
  EXPECT_DOUBLE_EQ(b.residual().value(), 0.0);
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, NegativeDrawThrows) {
  Battery b(Joules{5.0});
  EXPECT_THROW(b.draw(Joules{-1.0}, DrawKind::kOther), std::invalid_argument);
}

TEST(Battery, DepletionCallbackFiresExactlyOnce) {
  Battery b(Joules{5.0});
  int calls = 0;
  b.set_depletion_callback([&] { ++calls; });
  b.draw(Joules{4.0}, DrawKind::kTransmit);
  EXPECT_EQ(calls, 0);
  b.draw(Joules{2.0}, DrawKind::kTransmit);
  EXPECT_EQ(calls, 1);
  b.draw(Joules{1.0}, DrawKind::kTransmit);  // already dead; no second call
  EXPECT_EQ(calls, 1);
}

TEST(Battery, CanAfford) {
  Battery b(Joules{5.0});
  EXPECT_TRUE(b.can_afford(Joules{5.0}));
  EXPECT_FALSE(b.can_afford(Joules{5.1}));
  b.draw(Joules{3.0}, DrawKind::kMove);
  EXPECT_TRUE(b.can_afford(Joules{2.0}));
  EXPECT_FALSE(b.can_afford(Joules{2.1}));
}

TEST(Battery, DrawZeroIsNoOp) {
  Battery b(Joules{5.0});
  EXPECT_DOUBLE_EQ(b.draw(Joules{0.0}, DrawKind::kOther).value(), 0.0);
  EXPECT_DOUBLE_EQ(b.residual().value(), 5.0);
}

TEST(Battery, ZeroInitialIsBornDepleted) {
  Battery b(Joules{0.0});
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, RechargeResetsEverything) {
  Battery b(Joules{5.0});
  int calls = 0;
  b.set_depletion_callback([&] { ++calls; });
  b.draw(Joules{5.0}, DrawKind::kTransmit);
  EXPECT_EQ(calls, 1);
  b.recharge(Joules{8.0});
  EXPECT_DOUBLE_EQ(b.residual().value(), 8.0);
  EXPECT_FALSE(b.depleted());
  EXPECT_DOUBLE_EQ(b.consumed_total().value(), 0.0);
  EXPECT_DOUBLE_EQ(b.consumed_transmit().value(), 0.0);
  b.draw(Joules{9.0}, DrawKind::kTransmit);
  EXPECT_EQ(calls, 2);  // callback survives recharge
  EXPECT_THROW(b.recharge(Joules{-1.0}), std::invalid_argument);
}

TEST(Battery, ConservationInvariant) {
  Battery b(Joules{100.0});
  for (int i = 0; i < 50; ++i) {
    b.draw(Joules{1.3}, DrawKind::kTransmit);
    b.draw(Joules{0.4}, DrawKind::kMove);
  }
  EXPECT_NEAR((b.residual() + b.consumed_total()).value(), 100.0, 1e-9);
  EXPECT_NEAR((b.consumed_transmit() + b.consumed_move() +
               b.consumed_other()).value(),
              b.consumed_total().value(), 1e-9);
}

}  // namespace
}  // namespace imobif::energy
