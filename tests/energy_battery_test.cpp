#include "energy/battery.hpp"

#include <gtest/gtest.h>

namespace imobif::energy {
namespace {

TEST(Battery, InitialState) {
  Battery b(10.0);
  EXPECT_DOUBLE_EQ(b.residual(), 10.0);
  EXPECT_DOUBLE_EQ(b.initial(), 10.0);
  EXPECT_FALSE(b.depleted());
  EXPECT_DOUBLE_EQ(b.consumed_total(), 0.0);
}

TEST(Battery, NegativeInitialThrows) {
  EXPECT_THROW(Battery(-1.0), std::invalid_argument);
}

TEST(Battery, DrawReducesResidual) {
  Battery b(10.0);
  EXPECT_DOUBLE_EQ(b.draw(3.0, DrawKind::kTransmit), 3.0);
  EXPECT_DOUBLE_EQ(b.residual(), 7.0);
  EXPECT_DOUBLE_EQ(b.consumed_transmit(), 3.0);
  EXPECT_DOUBLE_EQ(b.consumed_total(), 3.0);
}

TEST(Battery, DrawByCategory) {
  Battery b(10.0);
  b.draw(1.0, DrawKind::kTransmit);
  b.draw(2.0, DrawKind::kMove);
  b.draw(3.0, DrawKind::kOther);
  EXPECT_DOUBLE_EQ(b.consumed_transmit(), 1.0);
  EXPECT_DOUBLE_EQ(b.consumed_move(), 2.0);
  EXPECT_DOUBLE_EQ(b.consumed_other(), 3.0);
  EXPECT_DOUBLE_EQ(b.consumed_total(), 6.0);
}

TEST(Battery, OverdrawClampsToResidual) {
  Battery b(5.0);
  EXPECT_DOUBLE_EQ(b.draw(8.0, DrawKind::kMove), 5.0);
  EXPECT_DOUBLE_EQ(b.residual(), 0.0);
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, NegativeDrawThrows) {
  Battery b(5.0);
  EXPECT_THROW(b.draw(-1.0, DrawKind::kOther), std::invalid_argument);
}

TEST(Battery, DepletionCallbackFiresExactlyOnce) {
  Battery b(5.0);
  int calls = 0;
  b.set_depletion_callback([&] { ++calls; });
  b.draw(4.0, DrawKind::kTransmit);
  EXPECT_EQ(calls, 0);
  b.draw(2.0, DrawKind::kTransmit);
  EXPECT_EQ(calls, 1);
  b.draw(1.0, DrawKind::kTransmit);  // already dead; no second call
  EXPECT_EQ(calls, 1);
}

TEST(Battery, CanAfford) {
  Battery b(5.0);
  EXPECT_TRUE(b.can_afford(5.0));
  EXPECT_FALSE(b.can_afford(5.1));
  b.draw(3.0, DrawKind::kMove);
  EXPECT_TRUE(b.can_afford(2.0));
  EXPECT_FALSE(b.can_afford(2.1));
}

TEST(Battery, DrawZeroIsNoOp) {
  Battery b(5.0);
  EXPECT_DOUBLE_EQ(b.draw(0.0, DrawKind::kOther), 0.0);
  EXPECT_DOUBLE_EQ(b.residual(), 5.0);
}

TEST(Battery, ZeroInitialIsBornDepleted) {
  Battery b(0.0);
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, RechargeResetsEverything) {
  Battery b(5.0);
  int calls = 0;
  b.set_depletion_callback([&] { ++calls; });
  b.draw(5.0, DrawKind::kTransmit);
  EXPECT_EQ(calls, 1);
  b.recharge(8.0);
  EXPECT_DOUBLE_EQ(b.residual(), 8.0);
  EXPECT_FALSE(b.depleted());
  EXPECT_DOUBLE_EQ(b.consumed_total(), 0.0);
  EXPECT_DOUBLE_EQ(b.consumed_transmit(), 0.0);
  b.draw(9.0, DrawKind::kTransmit);
  EXPECT_EQ(calls, 2);  // callback survives recharge
  EXPECT_THROW(b.recharge(-1.0), std::invalid_argument);
}

TEST(Battery, ConservationInvariant) {
  Battery b(100.0);
  for (int i = 0; i < 50; ++i) {
    b.draw(1.3, DrawKind::kTransmit);
    b.draw(0.4, DrawKind::kMove);
  }
  EXPECT_NEAR(b.residual() + b.consumed_total(), 100.0, 1e-9);
  EXPECT_NEAR(b.consumed_transmit() + b.consumed_move() +
                  b.consumed_other(),
              b.consumed_total(), 1e-9);
}

}  // namespace
}  // namespace imobif::energy
