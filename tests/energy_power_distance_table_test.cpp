#include "energy/power_distance_table.hpp"

#include <gtest/gtest.h>

namespace imobif::energy {
namespace {

RadioEnergyModel test_model() {
  RadioParams p;
  p.a = 1e-7;
  p.b = 1e-10;
  p.alpha = 2.0;
  return RadioEnergyModel(p);
}

TEST(PowerDistanceTable, RejectsBadConfig) {
  EXPECT_THROW(PowerDistanceTable(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(PowerDistanceTable(10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(PowerDistanceTable(10.0, 5.0), std::invalid_argument);
}

TEST(PowerDistanceTable, EmptyTableKnowsNothing) {
  PowerDistanceTable t(10.0, 200.0);
  EXPECT_EQ(t.populated_bins(), 0u);
  EXPECT_FALSE(t.min_power(50.0).has_value());
}

TEST(PowerDistanceTable, ObserveThenLookup) {
  PowerDistanceTable t(10.0, 200.0);
  t.observe(55.0, 3e-7);
  const auto p = t.min_power(52.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(*p, 3e-7);
}

TEST(PowerDistanceTable, KeepsMinimumPerBin) {
  PowerDistanceTable t(10.0, 200.0);
  t.observe(55.0, 5e-7);
  t.observe(57.0, 3e-7);
  t.observe(51.0, 4e-7);
  EXPECT_DOUBLE_EQ(*t.min_power(55.0), 3e-7);
}

TEST(PowerDistanceTable, FartherBinCoversNearerQuery) {
  PowerDistanceTable t(10.0, 200.0);
  t.observe(150.0, 9e-7);  // only a far observation
  // A nearer query can use the far bin's power (conservative).
  const auto p = t.min_power(40.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(*p, 9e-7);
}

TEST(PowerDistanceTable, BeyondTableIsUnknown) {
  PowerDistanceTable t(10.0, 200.0);
  t.observe(50.0, 1e-7);
  EXPECT_FALSE(t.min_power(250.0).has_value());
  EXPECT_FALSE(t.min_power(-1.0).has_value());
}

TEST(PowerDistanceTable, NegativeObservationThrows) {
  PowerDistanceTable t(10.0, 200.0);
  EXPECT_THROW(t.observe(-5.0, 1e-7), std::invalid_argument);
  EXPECT_THROW(t.observe(5.0, -1e-7), std::invalid_argument);
}

TEST(PowerDistanceTable, SeedFromModelPopulatesAllBins) {
  PowerDistanceTable t(10.0, 200.0);
  t.seed_from_model(test_model());
  EXPECT_EQ(t.populated_bins(), t.bin_count());
}

TEST(PowerDistanceTable, SeededValuesAreSufficient) {
  // Property (Assumption 4 soundness): the table's answer is always enough
  // power to actually reach the queried distance under the true model.
  PowerDistanceTable t(5.0, 200.0);
  const RadioEnergyModel model = test_model();
  t.seed_from_model(model);
  for (double d = 1.0; d < 200.0; d += 3.7) {
    const auto p = t.min_power(d);
    ASSERT_TRUE(p.has_value()) << "d=" << d;
    EXPECT_GE(*p, model.power_per_bit(d) - 1e-15) << "d=" << d;
    // And not absurdly conservative: at most one bin-width worth extra.
    EXPECT_LE(*p, model.power_per_bit(d + t.bin_width()) + 1e-15);
  }
}

TEST(PowerDistanceTable, LearningRefinesSeededTable) {
  PowerDistanceTable t(10.0, 200.0);
  t.seed_from_model(test_model());
  const double seeded = *t.min_power(45.0);
  t.observe(49.0, seeded * 0.5);  // hardware did better than the model
  EXPECT_DOUBLE_EQ(*t.min_power(45.0), seeded * 0.5);
}

}  // namespace
}  // namespace imobif::energy
