#include "energy/power_distance_table.hpp"

#include <gtest/gtest.h>

namespace imobif::energy {
namespace {

using util::JoulesPerBit;
using util::Meters;

RadioEnergyModel test_model() {
  RadioParams p;
  p.a = 1e-7;
  p.b = 1e-10;
  p.alpha = 2.0;
  return RadioEnergyModel(p);
}

TEST(PowerDistanceTable, RejectsBadConfig) {
  EXPECT_THROW(PowerDistanceTable(Meters{0.0}, Meters{100.0}),
               std::invalid_argument);
  EXPECT_THROW(PowerDistanceTable(Meters{10.0}, Meters{10.0}),
               std::invalid_argument);
  EXPECT_THROW(PowerDistanceTable(Meters{10.0}, Meters{5.0}),
               std::invalid_argument);
}

TEST(PowerDistanceTable, EmptyTableKnowsNothing) {
  PowerDistanceTable t(Meters{10.0}, Meters{200.0});
  EXPECT_EQ(t.populated_bins(), 0u);
  EXPECT_FALSE(t.min_power(Meters{50.0}).has_value());
}

TEST(PowerDistanceTable, ObserveThenLookup) {
  PowerDistanceTable t(Meters{10.0}, Meters{200.0});
  t.observe(Meters{55.0}, JoulesPerBit{3e-7});
  const auto p = t.min_power(Meters{52.0});
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->value(), 3e-7);
}

TEST(PowerDistanceTable, KeepsMinimumPerBin) {
  PowerDistanceTable t(Meters{10.0}, Meters{200.0});
  t.observe(Meters{55.0}, JoulesPerBit{5e-7});
  t.observe(Meters{57.0}, JoulesPerBit{3e-7});
  t.observe(Meters{51.0}, JoulesPerBit{4e-7});
  EXPECT_DOUBLE_EQ(t.min_power(Meters{55.0})->value(), 3e-7);
}

TEST(PowerDistanceTable, FartherBinCoversNearerQuery) {
  PowerDistanceTable t(Meters{10.0}, Meters{200.0});
  t.observe(Meters{150.0}, JoulesPerBit{9e-7});  // only a far observation
  // A nearer query can use the far bin's power (conservative).
  const auto p = t.min_power(Meters{40.0});
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->value(), 9e-7);
}

TEST(PowerDistanceTable, BeyondTableIsUnknown) {
  PowerDistanceTable t(Meters{10.0}, Meters{200.0});
  t.observe(Meters{50.0}, JoulesPerBit{1e-7});
  EXPECT_FALSE(t.min_power(Meters{250.0}).has_value());
  EXPECT_FALSE(t.min_power(Meters{-1.0}).has_value());
}

TEST(PowerDistanceTable, NegativeObservationThrows) {
  PowerDistanceTable t(Meters{10.0}, Meters{200.0});
  EXPECT_THROW(t.observe(Meters{-5.0}, JoulesPerBit{1e-7}),
               std::invalid_argument);
  EXPECT_THROW(t.observe(Meters{5.0}, JoulesPerBit{-1e-7}),
               std::invalid_argument);
}

TEST(PowerDistanceTable, SeedFromModelPopulatesAllBins) {
  PowerDistanceTable t(Meters{10.0}, Meters{200.0});
  t.seed_from_model(test_model());
  EXPECT_EQ(t.populated_bins(), t.bin_count());
}

TEST(PowerDistanceTable, SeededValuesAreSufficient) {
  // Property (Assumption 4 soundness): the table's answer is always enough
  // power to actually reach the queried distance under the true model.
  PowerDistanceTable t(Meters{5.0}, Meters{200.0});
  const RadioEnergyModel model = test_model();
  t.seed_from_model(model);
  for (double d = 1.0; d < 200.0; d += 3.7) {
    const auto p = t.min_power(Meters{d});
    ASSERT_TRUE(p.has_value()) << "d=" << d;
    EXPECT_GE(*p, model.power_per_bit(Meters{d}) - JoulesPerBit{1e-15})
        << "d=" << d;
    // And not absurdly conservative: at most one bin-width worth extra.
    EXPECT_LE(*p, model.power_per_bit(Meters{d} + t.bin_width()) +
                      JoulesPerBit{1e-15});
  }
}

TEST(PowerDistanceTable, LearningRefinesSeededTable) {
  PowerDistanceTable t(Meters{10.0}, Meters{200.0});
  t.seed_from_model(test_model());
  const JoulesPerBit seeded = *t.min_power(Meters{45.0});
  t.observe(Meters{49.0}, seeded * 0.5);  // hardware did better than the model
  EXPECT_DOUBLE_EQ(t.min_power(Meters{45.0})->value(), (seeded * 0.5).value());
}

}  // namespace
}  // namespace imobif::energy
