#include "net/flow_groups.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace imobif::net {
namespace {

using test::make_harness;
using util::Bits;
using util::Seconds;

// A fan topology: source 0 reaches destinations 4 and 5 through the shared
// relays 1 and 2; destination 6 hangs off relay 2 as well.
//
//        0 -- 1 -- 2 -- 4
//                   \-- 5 (below)
std::vector<geom::Vec2> fan() {
  return {{0, 0},     {150, 0},  {300, 0},
          {450, 80},  {450, 0},  {450, -80}};
}

TEST(FlowGroups, OneToManyDeliversToEveryDestination) {
  auto h = make_harness(fan());
  h.net().warmup(Seconds{25.0});
  OneToManySpec spec;
  spec.base_id = 10;
  spec.source = 0;
  spec.destinations = {3, 4, 5};
  spec.length_bits_each = Bits{8192.0 * 4};
  const auto ids = start_one_to_many(h.net(), spec);
  EXPECT_EQ(ids, (std::vector<FlowId>{10, 11, 12}));
  h.net().run_flows(Seconds{120.0});

  EXPECT_TRUE(group_complete(h.net(), ids));
  EXPECT_DOUBLE_EQ(group_delivered_bits(h.net(), ids).value(),
                   3 * 8192.0 * 4);
  for (const FlowId id : ids) {
    EXPECT_TRUE(h.net().progress(id).completed);
  }
}

TEST(FlowGroups, OneToManySharesTrunkRelays) {
  auto h = make_harness(fan());
  h.net().warmup(Seconds{25.0});
  OneToManySpec spec;
  spec.base_id = 10;
  spec.source = 0;
  spec.destinations = {3, 4, 5};
  spec.length_bits_each = Bits{8192.0 * 4};
  const auto ids = start_one_to_many(h.net(), spec);
  h.net().run_flows(Seconds{120.0});

  const auto trunk = shared_relays(h.net(), ids, /*min_flows=*/3);
  // Relays 1 and 2 carry all three member flows.
  EXPECT_EQ(trunk, (std::vector<NodeId>{1, 2}));
}

TEST(FlowGroups, OneToManyValidation) {
  auto h = make_harness(fan());
  OneToManySpec spec;
  spec.base_id = 10;
  spec.source = 0;
  spec.length_bits_each = Bits{8192.0};
  spec.destinations = {};
  EXPECT_THROW(start_one_to_many(h.net(), spec), std::invalid_argument);
  spec.destinations = {3, 3};
  EXPECT_THROW(start_one_to_many(h.net(), spec), std::invalid_argument);
  spec.destinations = {0, 3};
  EXPECT_THROW(start_one_to_many(h.net(), spec), std::invalid_argument);
  spec.destinations = {3};
  spec.base_id = kInvalidFlow;
  EXPECT_THROW(start_one_to_many(h.net(), spec), std::invalid_argument);
}

TEST(FlowGroups, ManyToOneConverges) {
  auto h = make_harness(fan());
  h.net().warmup(Seconds{25.0});
  ManyToOneSpec spec;
  spec.base_id = 20;
  spec.sources = {3, 4, 5};
  spec.sink = 0;
  spec.length_bits_each = Bits{8192.0 * 3};
  spec.strategy = StrategyId::kMaxLifetime;
  const auto ids = start_many_to_one(h.net(), spec);
  h.net().run_flows(Seconds{120.0});

  EXPECT_TRUE(group_complete(h.net(), ids));
  // The sink's flow table has an entry per member flow.
  for (const FlowId id : ids) {
    EXPECT_NE(h.net().node(0).flows().find(id), nullptr);
  }
}

TEST(FlowGroups, ManyToOneValidation) {
  auto h = make_harness(fan());
  ManyToOneSpec spec;
  spec.base_id = 20;
  spec.sink = 0;
  spec.length_bits_each = Bits{8192.0};
  spec.sources = {0, 3};
  EXPECT_THROW(start_many_to_one(h.net(), spec), std::invalid_argument);
}

TEST(FlowGroups, GroupNotificationsAggregates) {
  auto h = make_harness(fan());
  h.net().warmup(Seconds{25.0});
  OneToManySpec spec;
  spec.base_id = 10;
  spec.source = 0;
  spec.destinations = {3, 4};
  spec.length_bits_each = Bits{8192.0 * 2};
  const auto ids = start_one_to_many(h.net(), spec);
  h.net().run_flows(Seconds{60.0});
  // Short flows: no destination asks for mobility.
  EXPECT_EQ(group_notifications(h.net(), ids), 0u);
}

TEST(FlowGroups, BlendedRelayServesBothBranches) {
  // With blending on, the shared relay's movement target is a compromise;
  // the flows still complete and the relay ends between the branch lines.
  test::HarnessOptions opts;
  opts.mode = core::MobilityMode::kCostUnaware;
  opts.k = 0.0;
  auto h = make_harness(fan(), opts);
  h.policy->set_multi_flow_blending(true);
  h.net().warmup(Seconds{25.0});
  OneToManySpec spec;
  spec.base_id = 10;
  spec.source = 0;
  spec.destinations = {3, 5};  // symmetric branches up/down
  spec.length_bits_each = Bits{8192.0 * 500};
  spec.initially_enabled = true;
  const auto ids = start_one_to_many(h.net(), spec);
  h.net().run_flows(Seconds{2500.0});
  EXPECT_TRUE(group_complete(h.net(), ids));
  // Relay 2 feeds both branches symmetrically: blending keeps it near
  // y = 0 instead of oscillating toward either branch.
  EXPECT_NEAR(h.net().node(2).position().y, 0.0, 15.0);
}

}  // namespace
}  // namespace imobif::net
