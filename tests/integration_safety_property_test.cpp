// Seed-parameterized end-to-end safety properties — the core guarantees
// the paper claims for the framework, checked across random topologies:
//
//   1. iMobif never consumes materially more energy than the static
//      baseline (only notification packets can add a sliver);
//   2. the same holds under the literal Figure-1 estimator;
//   3. lifetime runs: the informed max-lifetime strategy never materially
//      shortens the system lifetime;
//   4. replays are bit-deterministic.
#include <gtest/gtest.h>

#include "exp/experiments.hpp"

namespace imobif::exp {
namespace {

ScenarioParams scenario(std::uint64_t seed) {
  ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.mean_flow_bits = util::Bits{512.0 * 1024.0 * 8.0};
  p.mobility.k = 0.3;
  p.seed = seed;
  return p;
}

class SafetyAcrossSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetyAcrossSeeds, InformedEnergyNeverMateriallyWorse) {
  const auto points = run_comparison(scenario(GetParam()), 3);
  for (const auto& pt : points) {
    ASSERT_TRUE(pt.baseline.completed);
    ASSERT_TRUE(pt.informed.completed);
    EXPECT_LE(pt.energy_ratio_informed(), 1.02)
        << "flow of " << pt.flow_bits.value() / 8192.0 << " KB";
  }
}

TEST_P(SafetyAcrossSeeds, PaperLocalEstimatorAlsoSafe) {
  ScenarioParams p = scenario(GetParam());
  p.paper_local_estimator = true;
  const auto points = run_comparison(p, 3);
  for (const auto& pt : points) {
    EXPECT_LE(pt.energy_ratio_informed(), 1.02);
  }
}

TEST_P(SafetyAcrossSeeds, LifetimeMostlyPreservedOrImproved) {
  // The paper's Figure-8 claim is "longer system lifetime ... for *most*
  // flow instances" — a minority can end below baseline when a bottleneck
  // node pays for movement that a later re-evaluation cancels. Require the
  // majority of instances near-or-above baseline and a sane mean.
  ScenarioParams p = scenario(GetParam());
  p.strategy = net::StrategyId::kMaxLifetime;
  p.random_energy = true;
  p.energy_lo_j = util::Joules{5.0};
  p.energy_hi_j = util::Joules{100.0};
  p.mean_flow_bits = util::Bits{1024.0 * 1024.0 * 8.0};
  RunOptions opt;
  opt.stop_on_first_death = true;
  const auto points = run_comparison(p, 3, opt);
  int near_or_above = 0;
  double sum = 0.0;
  for (const auto& pt : points) {
    const double ratio = pt.lifetime_ratio_informed();
    EXPECT_GT(ratio, 0.3);  // never catastrophic
    sum += ratio;
    if (ratio >= 0.95) ++near_or_above;
  }
  EXPECT_GE(near_or_above, 2);  // most of the 3 instances
  EXPECT_GE(sum / 3.0, 0.85);
}

TEST_P(SafetyAcrossSeeds, DeterministicReplay) {
  const auto a = run_comparison(scenario(GetParam()), 2);
  const auto b = run_comparison(scenario(GetParam()), 2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].informed.total_energy_j.value(),
                     b[i].informed.total_energy_j.value());
    EXPECT_DOUBLE_EQ(a[i].cost_unaware.moved_distance_m.value(),
                     b[i].cost_unaware.moved_distance_m.value());
    EXPECT_EQ(a[i].informed.notifications, b[i].informed.notifications);
  }
}

TEST_P(SafetyAcrossSeeds, EnergyDecompositionConsistent) {
  const auto points = run_comparison(scenario(GetParam()), 2);
  for (const auto& pt : points) {
    for (const RunResult* run :
         {&pt.baseline, &pt.cost_unaware, &pt.informed}) {
      EXPECT_NEAR(run->total_energy_j.value(),
                  (run->transmit_energy_j + run->movement_energy_j).value(),
                  1e-6);
      EXPECT_GE(run->movement_energy_j, util::Joules{0.0});
      EXPECT_GT(run->transmit_energy_j, util::Joules{0.0});
    }
    EXPECT_DOUBLE_EQ(pt.baseline.movement_energy_j.value(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyAcrossSeeds,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace imobif::exp
