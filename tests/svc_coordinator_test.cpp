// Coordinator state machine, driven without sockets: a recording SendFn
// plus explicit timestamps exercise scheduling, exactly-once merge,
// worker-loss requeue, heartbeat expiry, and the submit failure paths.
// The merge test feeds real unit results and checks the emitted report
// byte-equals the local reference builder's output.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/scenario_io.hpp"
#include "runtime/comparison_report.hpp"
#include "runtime/sweep.hpp"
#include "snap/result_io.hpp"
#include "svc/coordinator.hpp"
#include "svc/messages.hpp"

namespace {

using namespace imobif;

exp::ScenarioParams small_params() {
  exp::ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.mean_flow_bits = util::Bits{60.0 * 1024.0 * 8.0};
  p.seed = 42;
  return p;
}

/// Records every frame the coordinator sends, per peer.
struct Outbox {
  std::map<std::uint64_t, std::vector<svc::Frame>> frames;

  svc::Coordinator::SendFn fn() {
    return [this](std::uint64_t peer_id, const svc::Frame& frame) {
      frames[peer_id].push_back(frame);
    };
  }

  /// Frames of `type` sent to `peer_id`, in order.
  std::vector<svc::Frame> of(std::uint64_t peer_id, svc::MsgType type) const {
    std::vector<svc::Frame> out;
    const auto it = frames.find(peer_id);
    if (it == frames.end()) return out;
    for (const svc::Frame& frame : it->second) {
      if (frame.type == type) out.push_back(frame);
    }
    return out;
  }
};

constexpr std::uint64_t kClient = 1;
constexpr std::uint64_t kWorkerA = 2;
constexpr std::uint64_t kWorkerB = 3;

void connect_peer(svc::Coordinator& coordinator, std::uint64_t peer_id,
                  svc::PeerRole role, std::int64_t now_ms = 0) {
  coordinator.on_connect(peer_id);
  svc::HelloMsg hello;
  hello.role = role;
  hello.name = role == svc::PeerRole::kClient ? "client" : "worker";
  coordinator.on_frame(peer_id, hello.to_frame(), now_ms);
}

svc::Frame submit_frame(const exp::ScenarioParams& params,
                        std::uint64_t instances, std::uint64_t unit_size) {
  svc::SubmitMsg submit;
  submit.bench_name = "coordinator_test";
  submit.scenario_text = exp::to_config_string(params);
  submit.instances = instances;
  submit.unit_size = unit_size;
  return submit.to_frame();
}

TEST(SvcCoordinator, MessageBeforeHelloIsRejected) {
  Outbox outbox;
  svc::Coordinator coordinator(outbox.fn(), {});
  coordinator.on_connect(kClient);
  coordinator.on_frame(kClient, submit_frame(small_params(), 4, 2), 0);
  const auto errors = outbox.of(kClient, svc::MsgType::kError);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(svc::ErrorMsg::from_frame(errors.front()).code,
            svc::ErrCode::kProtocolViolation);
  const auto to_close = coordinator.take_peers_to_close();
  ASSERT_EQ(to_close.size(), 1u);
  EXPECT_EQ(to_close.front(), kClient);
}

TEST(SvcCoordinator, SubmitValidation) {
  Outbox outbox;
  svc::Coordinator coordinator(outbox.fn(), {});
  connect_peer(coordinator, kClient, svc::PeerRole::kClient);

  coordinator.on_frame(kClient, submit_frame(small_params(), 0, 2), 0);
  auto errors = outbox.of(kClient, svc::MsgType::kError);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(svc::ErrorMsg::from_frame(errors.front()).code,
            svc::ErrCode::kSubmitRejected);

  svc::SubmitMsg bad;
  bad.bench_name = "x";
  bad.scenario_text = "node_count = banana\n";
  bad.instances = 4;
  coordinator.on_frame(kClient, bad.to_frame(), 0);
  errors = outbox.of(kClient, svc::MsgType::kError);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(svc::ErrorMsg::from_frame(errors.back()).code,
            svc::ErrCode::kBadScenario);
  EXPECT_EQ(coordinator.active_sweeps(), 0u);
}

TEST(SvcCoordinator, ShardsAndSchedulesInOrder) {
  Outbox outbox;
  svc::Coordinator coordinator(outbox.fn(), {});
  connect_peer(coordinator, kClient, svc::PeerRole::kClient);
  connect_peer(coordinator, kWorkerA, svc::PeerRole::kWorker);
  connect_peer(coordinator, kWorkerB, svc::PeerRole::kWorker);
  EXPECT_EQ(coordinator.connected_workers(), 2u);

  coordinator.on_frame(kClient, submit_frame(small_params(), 10, 4), 0);
  const auto acks = outbox.of(kClient, svc::MsgType::kSubmitAck);
  ASSERT_EQ(acks.size(), 1u);
  const svc::SubmitAckMsg ack = svc::SubmitAckMsg::from_frame(acks.front());
  EXPECT_EQ(ack.unit_count, 3u);  // ceil(10 / 4)

  // Units 0 and 1 go to workers A and B (peer-id order); unit 2 pends.
  const auto to_a = outbox.of(kWorkerA, svc::MsgType::kAssignUnit);
  const auto to_b = outbox.of(kWorkerB, svc::MsgType::kAssignUnit);
  ASSERT_EQ(to_a.size(), 1u);
  ASSERT_EQ(to_b.size(), 1u);
  const auto unit_a = svc::AssignUnitMsg::from_frame(to_a.front());
  const auto unit_b = svc::AssignUnitMsg::from_frame(to_b.front());
  EXPECT_EQ(unit_a.unit_index, 0u);
  EXPECT_EQ(unit_a.begin, 0u);
  EXPECT_EQ(unit_a.end, 4u);
  EXPECT_EQ(unit_a.checkpoint_scope,
            svc::sweep_checkpoint_scope(exp::to_config_string(small_params()),
                                        svc::RunOptionsWire{}, 10));
  EXPECT_EQ(unit_b.unit_index, 1u);
  EXPECT_EQ(unit_b.begin, 4u);
  EXPECT_EQ(unit_b.end, 8u);
  EXPECT_EQ(coordinator.pending_units(ack.sweep_id), 1u);
  EXPECT_EQ(coordinator.idle_workers(), 0u);
}

TEST(SvcCoordinator, WorkerLossRequeuesItsUnit) {
  Outbox outbox;
  svc::Coordinator coordinator(outbox.fn(), {});
  connect_peer(coordinator, kClient, svc::PeerRole::kClient);
  connect_peer(coordinator, kWorkerA, svc::PeerRole::kWorker);
  coordinator.on_frame(kClient, submit_frame(small_params(), 4, 4), 0);
  const auto ack = svc::SubmitAckMsg::from_frame(
      outbox.of(kClient, svc::MsgType::kSubmitAck).front());
  EXPECT_EQ(coordinator.pending_units(ack.sweep_id), 0u);

  // Worker dies; the unit goes back to pending...
  coordinator.on_disconnect(kWorkerA);
  EXPECT_EQ(coordinator.pending_units(ack.sweep_id), 1u);

  // ...and a newly arriving worker picks it up, same range, same scope.
  connect_peer(coordinator, kWorkerB, svc::PeerRole::kWorker);
  const auto to_b = outbox.of(kWorkerB, svc::MsgType::kAssignUnit);
  ASSERT_EQ(to_b.size(), 1u);
  const auto unit = svc::AssignUnitMsg::from_frame(to_b.front());
  EXPECT_EQ(unit.unit_index, 0u);
  EXPECT_EQ(unit.begin, 0u);
  EXPECT_EQ(unit.end, 4u);
  EXPECT_EQ(unit.checkpoint_scope,
            svc::sweep_checkpoint_scope(exp::to_config_string(small_params()),
                                        svc::RunOptionsWire{}, 4));
}

TEST(SvcCoordinator, HeartbeatTimeoutFlagsBusyWorkerOnly) {
  Outbox outbox;
  svc::Coordinator::Options options;
  options.heartbeat_timeout_ms = 1'000;
  svc::Coordinator coordinator(outbox.fn(), options);
  connect_peer(coordinator, kClient, svc::PeerRole::kClient, 0);
  connect_peer(coordinator, kWorkerA, svc::PeerRole::kWorker, 0);
  connect_peer(coordinator, kWorkerB, svc::PeerRole::kWorker, 0);
  coordinator.on_frame(kClient, submit_frame(small_params(), 4, 4), 0);
  // Worker A is busy with the only unit; B idles.

  coordinator.on_tick(500);
  EXPECT_TRUE(coordinator.take_peers_to_close().empty());

  // A progress frame refreshes the deadline.
  svc::UnitProgressMsg progress;
  progress.sweep_id = 1;
  progress.unit_index = 0;
  progress.instances_done = 1;
  coordinator.on_frame(kWorkerA, progress.to_frame(), 800);
  coordinator.on_tick(1'500);
  EXPECT_TRUE(coordinator.take_peers_to_close().empty());

  // Silence past the timeout: only the busy worker is flagged.
  coordinator.on_tick(2'000);
  const auto to_close = coordinator.take_peers_to_close();
  ASSERT_EQ(to_close.size(), 1u);
  EXPECT_EQ(to_close.front(), kWorkerA);
}

TEST(SvcCoordinator, MergePreservesUnitOrderAndMatchesLocalReport) {
  const exp::ScenarioParams params = small_params();
  constexpr std::uint64_t kInstances = 6;
  constexpr std::uint64_t kUnitSize = 4;

  // Local reference: the full sweep in one go, through the shared
  // report builder.
  const auto all_points =
      runtime::run_comparison_shard(params, 0, kInstances);
  const std::string expected =
      runtime::make_comparison_report("coordinator_test", params, all_points)
          .to_string();

  Outbox outbox;
  svc::Coordinator coordinator(outbox.fn(), {});
  connect_peer(coordinator, kClient, svc::PeerRole::kClient);
  connect_peer(coordinator, kWorkerA, svc::PeerRole::kWorker);
  connect_peer(coordinator, kWorkerB, svc::PeerRole::kWorker);
  coordinator.on_frame(kClient, submit_frame(params, kInstances, kUnitSize),
                       0);
  const auto ack = svc::SubmitAckMsg::from_frame(
      outbox.of(kClient, svc::MsgType::kSubmitAck).front());
  ASSERT_EQ(ack.unit_count, 2u);

  // Unit results computed per shard, delivered OUT of unit order, with
  // unit 1's result duplicated: the merge must key on unit index and
  // accept only the first copy.
  const auto unit0 = runtime::run_comparison_shard(params, 0, 4);
  const auto unit1 = runtime::run_comparison_shard(params, 4, 6);
  svc::UnitResultMsg result1;
  result1.sweep_id = ack.sweep_id;
  result1.unit_index = 1;
  result1.points_blob = snap::comparison_points_to_bytes(unit1);
  coordinator.on_frame(kWorkerB, result1.to_frame(), 0);
  coordinator.on_frame(kWorkerB, result1.to_frame(), 0);  // duplicate

  svc::UnitResultMsg result0;
  result0.sweep_id = ack.sweep_id;
  result0.unit_index = 0;
  result0.points_blob = snap::comparison_points_to_bytes(unit0);
  coordinator.on_frame(kWorkerA, result0.to_frame(), 0);

  const auto done_frames = outbox.of(kClient, svc::MsgType::kSweepDone);
  ASSERT_EQ(done_frames.size(), 1u);
  const svc::SweepDoneMsg done =
      svc::SweepDoneMsg::from_frame(done_frames.front());
  EXPECT_EQ(done.report_json, expected);
  const auto merged = snap::comparison_points_from_bytes(done.points_blob);
  ASSERT_EQ(merged.size(), kInstances);
  for (std::size_t i = 0; i < kInstances; ++i) {
    EXPECT_EQ(merged[i].flow_bits, all_points[i].flow_bits);
    EXPECT_EQ(merged[i].hops, all_points[i].hops);
  }
  EXPECT_EQ(coordinator.active_sweeps(), 0u);
  // No duplicate-triggered second finalize.
  EXPECT_EQ(outbox.of(kClient, svc::MsgType::kSweepDone).size(), 1u);
}

// The scope must survive a daemon restart: it is a function of the
// sweep's content, never of the daemon-local sweep id (which restarts at
// 1), so persistent checkpoint files can only ever be resumed by a sweep
// they are actually valid for.
TEST(SvcCoordinator, CheckpointScopeIsContentDerived) {
  const std::string scenario = exp::to_config_string(small_params());
  const std::string scope =
      svc::sweep_checkpoint_scope(scenario, svc::RunOptionsWire{}, 6);
  // Stable and well-formed: "swp" + 16 hex digits + "-".
  EXPECT_EQ(scope,
            svc::sweep_checkpoint_scope(scenario, svc::RunOptionsWire{}, 6));
  ASSERT_EQ(scope.size(), 3u + 16u + 1u);
  EXPECT_EQ(scope.substr(0, 3), "swp");
  EXPECT_EQ(scope.back(), '-');
  EXPECT_EQ(scope.find_first_not_of("0123456789abcdef", 3), scope.size() - 1);

  // Any content change — scenario, run options, instance count — moves
  // the scope, so leftover files from a different sweep are never found.
  exp::ScenarioParams other = small_params();
  other.seed = 43;
  EXPECT_NE(scope, svc::sweep_checkpoint_scope(exp::to_config_string(other),
                                               svc::RunOptionsWire{}, 6));
  svc::RunOptionsWire stopping;
  stopping.stop_on_first_death = true;
  EXPECT_NE(scope, svc::sweep_checkpoint_scope(scenario, stopping, 6));
  EXPECT_NE(scope,
            svc::sweep_checkpoint_scope(scenario, svc::RunOptionsWire{}, 7));

  // Two coordinators (daemon restarted) assign the same scope to the same
  // submission even though both call it sweep 1.
  Outbox outbox_a, outbox_b;
  svc::Coordinator first(outbox_a.fn(), {});
  svc::Coordinator second(outbox_b.fn(), {});
  for (auto* coordinator : {&first, &second}) {
    connect_peer(*coordinator, kClient, svc::PeerRole::kClient);
    connect_peer(*coordinator, kWorkerA, svc::PeerRole::kWorker);
    coordinator->on_frame(kClient, submit_frame(small_params(), 6, 6), 0);
  }
  const auto scope_of = [](const Outbox& outbox) {
    return svc::AssignUnitMsg::from_frame(
               outbox.of(kWorkerA, svc::MsgType::kAssignUnit).front())
        .checkpoint_scope;
  };
  EXPECT_EQ(scope_of(outbox_a), scope_of(outbox_b));
  EXPECT_EQ(scope_of(outbox_a),
            svc::sweep_checkpoint_scope(scenario, svc::RunOptionsWire{}, 6));
}

TEST(SvcCoordinator, UnitAttemptBudgetFailsSweepWithTypedError) {
  Outbox outbox;
  svc::Coordinator::Options options;
  options.max_unit_attempts = 2;
  svc::Coordinator coordinator(outbox.fn(), options);
  connect_peer(coordinator, kClient, svc::PeerRole::kClient);
  connect_peer(coordinator, kWorkerA, svc::PeerRole::kWorker);
  coordinator.on_frame(kClient, submit_frame(small_params(), 4, 4), 0);
  const auto ack = svc::SubmitAckMsg::from_frame(
      outbox.of(kClient, svc::MsgType::kSubmitAck).front());

  // First loss: one attempt spent, budget left, unit requeued.
  coordinator.on_disconnect(kWorkerA);
  EXPECT_EQ(coordinator.pending_units(ack.sweep_id), 1u);
  EXPECT_EQ(coordinator.active_sweeps(), 1u);

  // Second worker picks it up (attempt 2) and also dies: budget spent,
  // the sweep fails with kWorkerLost instead of cycling forever.
  connect_peer(coordinator, kWorkerB, svc::PeerRole::kWorker);
  EXPECT_EQ(outbox.of(kWorkerB, svc::MsgType::kAssignUnit).size(), 1u);
  coordinator.on_disconnect(kWorkerB);
  EXPECT_EQ(coordinator.active_sweeps(), 0u);
  const auto errors = outbox.of(kClient, svc::MsgType::kError);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(svc::ErrorMsg::from_frame(errors.front()).code,
            svc::ErrCode::kWorkerLost);
}

// A sweep whose merged result cannot fit one frame must fail with a
// typed error to the client; letting encode_frame throw inside the serve
// SendFn would silently drop the client instead.
TEST(SvcCoordinator, OversizedMergedResultYieldsTypedError) {
  exp::ComparisonPoint point;
  point.flow_bits = util::Bits{8192.0};
  point.hops = 2;
  for (exp::RunResult* run :
       {&point.baseline, &point.cost_unaware, &point.informed}) {
    run->completed = true;
    run->total_energy_j = util::Joules{1.0};
    run->lifetime_s = util::Seconds{1.0};
  }
  // Marginal encoded size (the blob also carries fixed stream overhead),
  // so `instances` points are guaranteed to overflow the frame cap.
  const std::size_t bytes_per_point =
      snap::comparison_points_to_bytes({point, point}).size() -
      snap::comparison_points_to_bytes({point}).size();
  const std::uint64_t instances = svc::kMaxFramePayload / bytes_per_point + 2;
  const std::vector<exp::ComparisonPoint> points(instances, point);

  Outbox outbox;
  svc::Coordinator coordinator(outbox.fn(), {});
  connect_peer(coordinator, kClient, svc::PeerRole::kClient);
  connect_peer(coordinator, kWorkerA, svc::PeerRole::kWorker);
  coordinator.on_frame(kClient,
                       submit_frame(small_params(), instances, instances), 0);
  const auto ack = svc::SubmitAckMsg::from_frame(
      outbox.of(kClient, svc::MsgType::kSubmitAck).front());

  svc::UnitResultMsg result;
  result.sweep_id = ack.sweep_id;
  result.unit_index = 0;
  result.points_blob = snap::comparison_points_to_bytes(points);
  coordinator.on_frame(kWorkerA, result.to_frame(), 0);

  EXPECT_TRUE(outbox.of(kClient, svc::MsgType::kSweepDone).empty());
  const auto errors = outbox.of(kClient, svc::MsgType::kError);
  ASSERT_EQ(errors.size(), 1u);
  const svc::ErrorMsg err = svc::ErrorMsg::from_frame(errors.front());
  EXPECT_EQ(err.code, svc::ErrCode::kOversizedFrame);
  EXPECT_NE(err.detail.find("too large"), std::string::npos);
  EXPECT_EQ(coordinator.active_sweeps(), 0u);
}

TEST(SvcCoordinator, ClientDisconnectDropsItsSweeps) {
  Outbox outbox;
  svc::Coordinator coordinator(outbox.fn(), {});
  connect_peer(coordinator, kClient, svc::PeerRole::kClient);
  coordinator.on_frame(kClient, submit_frame(small_params(), 4, 2), 0);
  EXPECT_EQ(coordinator.active_sweeps(), 1u);
  coordinator.on_disconnect(kClient);
  EXPECT_EQ(coordinator.active_sweeps(), 0u);
}

TEST(SvcCoordinator, ShutdownFlag) {
  Outbox outbox;
  svc::Coordinator coordinator(outbox.fn(), {});
  connect_peer(coordinator, kClient, svc::PeerRole::kClient);
  EXPECT_FALSE(coordinator.shutdown_requested());
  coordinator.on_frame(kClient, svc::make_shutdown(), 0);
  EXPECT_TRUE(coordinator.shutdown_requested());
}

}  // namespace
