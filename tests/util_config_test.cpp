#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace imobif::util {
namespace {

TEST(Config, ParsesKeyValuePairs) {
  const Config c = Config::from_string("a = 1\nb=hello\n  c  =  2.5  \n");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.get_string("a"), "1");
  EXPECT_EQ(c.get_string("b"), "hello");
  EXPECT_DOUBLE_EQ(c.get_double("c", 0.0), 2.5);
}

TEST(Config, CommentsAndBlanksIgnored) {
  const Config c = Config::from_string(
      "# full-line comment\n"
      "\n"
      "key = value  # trailing comment\n"
      "other = 3 ; semicolon comment\n");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.get_string("key"), "value");
  EXPECT_EQ(c.get_int("other", 0), 3);
}

TEST(Config, LaterDuplicateWins) {
  const Config c = Config::from_string("x = 1\nx = 2\n");
  EXPECT_EQ(c.get_int("x", 0), 2);
}

TEST(Config, MalformedLineThrowsWithLineNumber) {
  try {
    Config::from_string("good = 1\nno-equals-here\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("line 2"), std::string::npos);
  }
}

TEST(Config, EmptyKeyThrows) {
  EXPECT_THROW(Config::from_string(" = 5\n"), std::invalid_argument);
}

TEST(Config, AbsentKeysUseFallbacks) {
  const Config c = Config::from_string("");
  EXPECT_EQ(c.get_string("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(c.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(c.get_int("missing", -3), -3);
  EXPECT_TRUE(c.get_bool("missing", true));
  EXPECT_FALSE(c.has("missing"));
}

TEST(Config, TypedParseErrors) {
  const Config c = Config::from_string("d = notanumber\ni = 5x\nb = maybe\n");
  EXPECT_THROW(c.get_double("d", 0.0), std::invalid_argument);
  EXPECT_THROW(c.get_int("i", 0), std::invalid_argument);
  EXPECT_THROW(c.get_bool("b", false), std::invalid_argument);
}

TEST(Config, BooleanSpellings) {
  const Config c = Config::from_string(
      "a = true\nb = FALSE\nc = Yes\nd = off\ne = 1\nf = 0\n");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_TRUE(c.get_bool("e", false));
  EXPECT_FALSE(c.get_bool("f", true));
}

TEST(Config, ScientificNotationDoubles) {
  const Config c = Config::from_string("b = 5e-10\n");
  EXPECT_DOUBLE_EQ(c.get_double("b", 0.0), 5e-10);
}

TEST(Config, SetOverridesProgrammatically) {
  Config c = Config::from_string("a = 1\n");
  c.set("a", "9");
  c.set("new", "x");
  EXPECT_EQ(c.get_int("a", 0), 9);
  EXPECT_EQ(c.get_string("new"), "x");
}

TEST(Config, FromFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/imobif_config_test.conf";
  {
    std::ofstream out(path);
    out << "k = 0.5\nstrategy = max-lifetime\n";
  }
  const Config c = Config::from_file(path);
  EXPECT_DOUBLE_EQ(c.get_double("k", 0.0), 0.5);
  EXPECT_EQ(c.get_string("strategy"), "max-lifetime");
  std::remove(path.c_str());
}

TEST(Config, FromMissingFileThrows) {
  EXPECT_THROW(Config::from_file("/no/such/file.conf"), std::runtime_error);
}

}  // namespace
}  // namespace imobif::util
