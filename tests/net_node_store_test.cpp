#include "net/node_store.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace imobif::net {
namespace {

// Mirrors Column<T>::kChunk (private); a static_assert-style guard lives
// in ChunkBoundarySlotAllocation below — if the chunk size ever changes,
// the boundary expectations there fail loudly rather than silently
// testing the middle of a chunk.
constexpr std::size_t kChunk = 4096;

geom::Vec2 pos_for(std::size_t i) {
  return {static_cast<double>(i), static_cast<double>(2 * i)};
}

TEST(NodeStore, ChunkBoundarySlotAllocation) {
  NodeStore store;
  for (std::size_t i = 0; i < kChunk; ++i) {
    const NodeStore::Index idx = store.add(pos_for(i), util::Joules{1.0});
    EXPECT_EQ(idx, i);
  }
  ASSERT_EQ(store.size(), kChunk);

  // The next add() is the first slot of chunk 1: its cell must live in
  // fresh storage, not overrun chunk 0's last slot.
  const NodeStore::Index first_of_next = store.add(pos_for(kChunk),
                                                   util::Joules{2.0});
  ASSERT_EQ(first_of_next, kChunk);
  geom::Vec2* last_of_chunk0 = store.position_cell(kChunk - 1);
  geom::Vec2* first_of_chunk1 = store.position_cell(first_of_next);
  EXPECT_NE(last_of_chunk0, first_of_chunk1);
  EXPECT_EQ(store.position(kChunk - 1).x, pos_for(kChunk - 1).x);
  EXPECT_EQ(store.position(first_of_next).x, pos_for(kChunk).x);
  EXPECT_EQ(store.residual(first_of_next).value(), 2.0);

  // Within a chunk the column is contiguous; across the boundary it is
  // not required to be — but both cells must be readable and distinct.
  EXPECT_EQ(store.position_cell(1) - store.position_cell(0), 1);
}

TEST(NodeStore, PointerStabilityAcrossGrowth) {
  NodeStore store;
  store.add(pos_for(0), util::Joules{10.0});
  geom::Vec2* p0 = store.position_cell(0);
  util::Joules* r0 = store.residual_cell(0);
  FlowAggregate* f0 = store.flow_cell(0);

  // Growing across several chunk boundaries must not move handed-out
  // cells (Nodes and Batteries hold them for the store's lifetime).
  std::vector<geom::Vec2*> sampled;
  for (std::size_t i = 1; i < 3 * kChunk + 5; ++i) {
    store.add(pos_for(i), util::Joules{1.0});
    if (i % kChunk == 0) sampled.push_back(store.position_cell(i));
  }
  EXPECT_EQ(store.position_cell(0), p0);
  EXPECT_EQ(store.residual_cell(0), r0);
  EXPECT_EQ(store.flow_cell(0), f0);
  for (std::size_t s = 0; s < sampled.size(); ++s) {
    EXPECT_EQ(store.position_cell((s + 1) * kChunk), sampled[s]);
  }

  // Writes through a stale-looking pointer land in the store.
  *p0 = {-7.0, -8.0};
  *r0 = util::Joules{3.5};
  EXPECT_EQ(store.position(0).x, -7.0);
  EXPECT_EQ(store.residual(0).value(), 3.5);
}

TEST(NodeStore, ColumnSweepsCrossChunkBoundaries) {
  NodeStore store;
  const std::size_t n = kChunk + 3;  // one full chunk + a partial tail
  for (std::size_t i = 0; i < n; ++i) {
    store.add(pos_for(i), util::Joules{1.0});
    store.flow_cell(static_cast<NodeStore::Index>(i))->packets_relayed = 2;
  }
  EXPECT_EQ(store.total_residual().value(), static_cast<double>(n));
  EXPECT_EQ(store.total_packets_relayed(), 2 * n);
}

}  // namespace
}  // namespace imobif::net
