// Fuzz target for the mobility-trace parser: the waypoint grammar must
// reject malformed lines with std::invalid_argument — never UB — and a
// parsed trace's interpolation must be total over covered nodes (finite
// queries at any time, including before/after the schedule).
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "mob/trace.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  try {
    const imobif::mob::Trace trace = imobif::mob::parse_trace(text);
    // A trace that parsed is fully queryable: exercise interpolation
    // before, inside, and far past every schedule.
    for (std::size_t node = 0; node < trace.schedules.size(); ++node) {
      if (!trace.has(node)) continue;
      const auto& schedule = trace.schedules[node];
      const double first = schedule.front().time_s;
      const double last = schedule.back().time_s;
      using imobif::util::Seconds;
      (void)trace.position_at(node, Seconds{first - 1.0});
      (void)trace.position_at(node, Seconds{(first + last) / 2.0});
      (void)trace.position_at(node, Seconds{last + 1e6});
    }
  } catch (const std::invalid_argument&) {
    // Malformed input: the only contracted failure mode.
  }
  return 0;
}
