// Fuzz target for the snapshot codec: arbitrary untrusted bytes fed to
// snap::StateReader / snap::debug_dump must be rejected with a typed
// std::runtime_error — never a crash, hang, or undefined behavior. A
// checkpoint file is the one input the simulator reads that it did not
// produce in the same process, so this is the trust boundary.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "snap/codec.hpp"

namespace {

// Runs one typed-accessor walk on a fresh reader; every structured
// rejection path throws std::runtime_error, which is the contract.
template <typename Fn>
void probe(const std::string& bytes, Fn&& fn) {
  try {
    imobif::snap::StateReader reader(bytes);
    fn(reader);
  } catch (const std::runtime_error&) {
    // Expected for malformed input.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  // debug_dump walks the entire tagged stream generically, exercising
  // every decoder branch (tag dispatch, length prefixes, section nesting).
  try {
    (void)imobif::snap::debug_dump(bytes);
  } catch (const std::runtime_error&) {
  }

  // The typed API takes a different path through take_tag(): each accessor
  // demands a specific tag, so drive every accessor until first rejection.
  probe(bytes, [](auto& r) { while (!r.at_end()) (void)r.u8(); });
  probe(bytes, [](auto& r) { while (!r.at_end()) (void)r.u32(); });
  probe(bytes, [](auto& r) { while (!r.at_end()) (void)r.u64(); });
  probe(bytes, [](auto& r) { while (!r.at_end()) (void)r.i64(); });
  probe(bytes, [](auto& r) { while (!r.at_end()) (void)r.f64(); });
  probe(bytes, [](auto& r) { while (!r.at_end()) (void)r.boolean(); });
  probe(bytes, [](auto& r) { while (!r.at_end()) (void)r.str(); });
  probe(bytes, [](auto& r) {
    r.begin_section("nodes");
    while (!r.at_end()) (void)r.f64();
    r.end_section();
  });
  return 0;
}
