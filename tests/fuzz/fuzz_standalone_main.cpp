// Standalone driver used when the toolchain has no libFuzzer runtime
// (-fsanitize=fuzzer unavailable, e.g. a gcc-only container). It honors
// the same harness contract — every input goes through
// LLVMFuzzerTestOneInput — by replaying the seed corpus and a bounded,
// fully deterministic mutation loop derived from each seed. No wall
// clock, no ambient randomness: the same invocation always executes the
// same byte strings, so a CI failure reproduces locally byte for byte.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

// splitmix64: tiny, seedable, reproducible across platforms — enough to
// diversify mutations without dragging in <random> distributions.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void run_input(const std::string& bytes) {
  LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// One deterministic mutation of `seed`, chosen by the rng stream.
std::string mutate(const std::string& seed, std::uint64_t& rng) {
  std::string out = seed;
  switch (splitmix64(rng) % 4) {
    case 0:  // flip one byte
      if (!out.empty()) {
        out[splitmix64(rng) % out.size()] ^=
            static_cast<char>(1u << (splitmix64(rng) % 8));
      }
      break;
    case 1:  // truncate
      out.resize(out.empty() ? 0 : splitmix64(rng) % out.size());
      break;
    case 2:  // overwrite a byte with an arbitrary value
      if (!out.empty()) {
        out[splitmix64(rng) % out.size()] =
            static_cast<char>(splitmix64(rng) & 0xff);
      }
      break;
    case 3:  // insert a small random chunk
      out.insert(out.empty() ? 0 : splitmix64(rng) % out.size(),
                 std::string(1 + splitmix64(rng) % 8,
                             static_cast<char>(splitmix64(rng) & 0xff)));
      break;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t mutations = 256;
  std::vector<std::filesystem::path> seeds;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "-mutations=", 11) == 0) {
      mutations = static_cast<std::size_t>(std::strtoull(argv[i] + 11,
                                                         nullptr, 10));
    } else if (std::filesystem::is_directory(argv[i])) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(argv[i])) {
        if (entry.is_regular_file()) seeds.push_back(entry.path());
      }
    } else {
      seeds.emplace_back(argv[i]);
    }
  }
  if (seeds.empty()) {
    std::fprintf(stderr, "fuzz-standalone: no corpus inputs given\n");
    return 1;
  }
  std::sort(seeds.begin(), seeds.end());  // directory order is not stable

  std::size_t executed = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::string bytes = slurp(seeds[i]);
    run_input(bytes);
    ++executed;
    std::uint64_t rng = 0x1d872b41155a6e73ull ^ i;
    for (std::size_t m = 0; m < mutations; ++m) {
      run_input(mutate(bytes, rng));
      ++executed;
    }
  }
  std::printf("fuzz-standalone: %zu inputs executed, 0 failures\n", executed);
  return 0;
}
