// Fuzz target for the sweep-service frame decoder and message codecs:
// arbitrary untrusted bytes arriving on a farm socket must be rejected
// with a typed svc::SvcError — never a crash, hang, over-allocation, or
// undefined behavior. The frame stream is the service's trust boundary:
// anything on the loopback port can write to it.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "snap/result_io.hpp"
#include "svc/frame.hpp"
#include "svc/messages.hpp"

namespace {

using imobif::svc::Frame;
using imobif::svc::FrameDecoder;

// Decodes one frame's payload as every typed message; each must either
// succeed or throw SvcError (a std::runtime_error).
void probe_messages(const Frame& frame) {
  const auto probe = [](auto&& decode) {
    try {
      (void)decode();
    } catch (const std::runtime_error&) {
      // Expected for malformed or mistyped payloads.
    }
  };
  using namespace imobif::svc;
  probe([&] { return HelloMsg::from_frame(frame); });
  probe([&] { return HelloAckMsg::from_frame(frame); });
  probe([&] { return SubmitMsg::from_frame(frame); });
  probe([&] { return SubmitAckMsg::from_frame(frame); });
  probe([&] { return AssignUnitMsg::from_frame(frame); });
  probe([&] { return UnitProgressMsg::from_frame(frame); });
  probe([&] { return UnitResultMsg::from_frame(frame); });
  probe([&] { return ProgressMsg::from_frame(frame); });
  probe([&] { return SweepDoneMsg::from_frame(frame); });
  probe([&] { return ErrorMsg::from_frame(frame); });
  probe([&] {
    return imobif::snap::comparison_points_from_bytes(frame.payload);
  });
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // Whole-buffer feed: the decoder either yields frames or poisons with a
  // typed error; a poisoned decoder must keep rethrowing, not recover.
  {
    FrameDecoder decoder;
    decoder.feed(bytes);
    try {
      while (std::optional<Frame> frame = decoder.next()) {
        probe_messages(*frame);
      }
    } catch (const std::runtime_error&) {
      try {
        (void)decoder.next();
      } catch (const std::runtime_error&) {
      }
    }
  }

  // Split feed: the same bytes across two feed() calls must behave
  // identically (incremental reassembly takes different code paths).
  {
    FrameDecoder decoder;
    decoder.feed(bytes.substr(0, size / 2));
    try {
      while (decoder.next()) {
      }
    } catch (const std::runtime_error&) {
    }
    decoder.feed(bytes.substr(size / 2));
    try {
      while (decoder.next()) {
      }
    } catch (const std::runtime_error&) {
    }
  }
  return 0;
}
