// Fuzz target for the scenario text pipeline: util::Config's key=value
// grammar, exp::apply_config's typed binding, and the crash-schedule
// mini-language. Malformed text must surface as std::invalid_argument /
// std::out_of_range / std::runtime_error — never UB. Well-formed text
// must additionally survive the format/re-parse round trip.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "exp/scenario_io.hpp"
#include "util/config.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  try {
    const imobif::util::Config config =
        imobif::util::Config::from_string(text);
    imobif::exp::ScenarioParams params;
    imobif::exp::apply_config(config, params);
    // If the input parsed, its formatted dump is a config file by contract
    // — re-parsing it must not throw.
    const std::string dumped = imobif::exp::to_config_string(params);
    const imobif::util::Config round =
        imobif::util::Config::from_string(dumped);
    imobif::exp::ScenarioParams again;
    imobif::exp::apply_config(round, again);
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  } catch (const std::runtime_error&) {
  }

  // The crash-schedule grammar also accepts raw text directly.
  try {
    const auto crashes = imobif::exp::parse_crashes(text);
    // Round trip: formatting a parsed schedule must re-parse cleanly.
    (void)imobif::exp::parse_crashes(imobif::exp::format_crashes(crashes));
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
  return 0;
}
