#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace imobif::net {
namespace {

TEST(PacketType, Names) {
  EXPECT_STREQ(to_string(PacketType::kHello), "HELLO");
  EXPECT_STREQ(to_string(PacketType::kData), "DATA");
  EXPECT_STREQ(to_string(PacketType::kNotification), "NOTIFY");
  EXPECT_STREQ(to_string(PacketType::kRouteRequest), "RREQ");
  EXPECT_STREQ(to_string(PacketType::kRouteReply), "RREP");
}

TEST(StrategyId, Names) {
  EXPECT_STREQ(to_string(StrategyId::kNone), "none");
  EXPECT_STREQ(to_string(StrategyId::kMinTotalEnergy), "min-total-energy");
  EXPECT_STREQ(to_string(StrategyId::kMaxLifetime), "max-lifetime");
  // Application-defined ids (custom strategies) fall through gracefully.
  EXPECT_STREQ(to_string(static_cast<StrategyId>(200)), "?");
}

TEST(Packet, DefaultsAreSane) {
  Packet pkt;
  EXPECT_EQ(pkt.type, PacketType::kHello);
  EXPECT_EQ(pkt.link_dest, kBroadcast);
  EXPECT_EQ(pkt.sender.id, kInvalidNode);
  EXPECT_TRUE(std::holds_alternative<HelloBody>(pkt.body));
}

TEST(DataBody, DefaultsAreSane) {
  DataBody d;
  EXPECT_EQ(d.flow_id, kInvalidFlow);
  EXPECT_FALSE(d.mobility_enabled);
  EXPECT_FALSE(d.sender_has_plan);
  EXPECT_EQ(d.hop_count, 0);
  EXPECT_DOUBLE_EQ(d.agg.bits_mob.value(), 0.0);
}

TEST(Packet, StreamFormatBroadcast) {
  Packet pkt;
  pkt.sender.id = 4;
  std::ostringstream os;
  os << pkt;
  EXPECT_EQ(os.str(), "HELLO from=4 to=broadcast");
}

TEST(Packet, StreamFormatData) {
  Packet pkt;
  pkt.type = PacketType::kData;
  pkt.sender.id = 1;
  pkt.link_dest = 2;
  DataBody d;
  d.flow_id = 9;
  d.seq = 3;
  d.destination = 7;
  d.mobility_enabled = true;
  pkt.body = d;
  std::ostringstream os;
  os << pkt;
  EXPECT_EQ(os.str(), "DATA from=1 to=2 flow=9 seq=3 dst=7 mob=on");
}

}  // namespace
}  // namespace imobif::net
