// Quantity<Dim> semantics: dimension algebra, ratio collapse, helpers, and
// the zero-overhead layout claims. The *negative* space — what must not
// compile — is covered by tests/compile_fail/.
#include "util/units.hpp"

#include <type_traits>

#include <gtest/gtest.h>

namespace imobif::util {
namespace {

TEST(Units, DefaultConstructsToZero) {
  Joules e;
  EXPECT_EQ(e.value(), 0.0);
  EXPECT_EQ(e, Joules{0.0});
}

TEST(Units, SameDimensionArithmetic) {
  Joules a{5.0};
  Joules b{3.0};
  EXPECT_EQ((a + b).value(), 8.0);
  EXPECT_EQ((a - b).value(), 2.0);
  EXPECT_EQ((-a).value(), -5.0);
  a += b;
  EXPECT_EQ(a.value(), 8.0);
  a -= Joules{1.0};
  EXPECT_EQ(a.value(), 7.0);
}

TEST(Units, ScalarScaling) {
  Meters d{10.0};
  EXPECT_EQ((d * 2.0).value(), 20.0);
  EXPECT_EQ((2.0 * d).value(), 20.0);
  EXPECT_EQ((d / 4.0).value(), 2.5);
  d *= 3.0;
  EXPECT_EQ(d.value(), 30.0);
  d /= 10.0;
  EXPECT_EQ(d.value(), 3.0);
}

TEST(Units, DimensionComposition) {
  // The motivating identities of the energy model.
  Joules e = JoulesPerBit{2e-7} * Bits{1000.0};
  EXPECT_DOUBLE_EQ(e.value(), 2e-4);

  JoulesPerMeter k = Joules{5.0} / Meters{10.0};
  EXPECT_DOUBLE_EQ(k.value(), 0.5);

  Meters range = Joules{5.0} / JoulesPerMeter{0.5};
  EXPECT_DOUBLE_EQ(range.value(), 10.0);

  Bits sustainable = Joules{1.0} / JoulesPerBit{1e-6};
  EXPECT_DOUBLE_EQ(sustainable.value(), 1e6);

  Watts p = Joules{10.0} / Seconds{2.0};
  EXPECT_DOUBLE_EQ(p.value(), 5.0);

  Seconds t = Bits{8192.0} / BitsPerSecond{8192.0};
  EXPECT_DOUBLE_EQ(t.value(), 1.0);
}

TEST(Units, SameDimensionRatioCollapsesToDouble) {
  auto ratio = Joules{6.0} / Joules{2.0};
  static_assert(std::is_same_v<decltype(ratio), double>);
  EXPECT_DOUBLE_EQ(ratio, 3.0);

  auto product = JoulesPerBit{2.0} * (Bits{4.0} / Joules{1.0});
  static_assert(std::is_same_v<decltype(product), double>);
  EXPECT_DOUBLE_EQ(product, 8.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Meters{1.0}, Meters{2.0});
  EXPECT_GE(Bits{5.0}, Bits{5.0});
  EXPECT_NE(Seconds{1.0}, Seconds{2.0});
}

TEST(Units, Helpers) {
  EXPECT_TRUE(isfinite(Joules{1.0}));
  EXPECT_FALSE(isfinite(Joules{1.0} / 0.0));
  EXPECT_TRUE(isnan(Joules{0.0} / 0.0));
  EXPECT_EQ(abs(Meters{-3.0}), Meters{3.0});
  EXPECT_EQ(min(Bits{1.0}, Bits{2.0}), Bits{1.0});
  EXPECT_EQ(max(Bits{1.0}, Bits{2.0}), Bits{2.0});
  EXPECT_EQ(clamp(Joules{5.0}, Joules{0.0}, Joules{2.0}), Joules{2.0});
  EXPECT_EQ(clamp(Joules{-1.0}, Joules{0.0}, Joules{2.0}), Joules{0.0});
  EXPECT_EQ(clamp(Joules{1.0}, Joules{0.0}, Joules{2.0}), Joules{1.0});
}

TEST(Units, UserDefinedLiterals) {
  EXPECT_EQ(5.0_J, Joules{5.0});
  EXPECT_EQ(100.0_m, Meters{100.0});
  EXPECT_EQ(2.5_s, Seconds{2.5});
  EXPECT_EQ(8192.0_bits, Bits{8192.0});
  EXPECT_EQ(0.5_J_per_m, JoulesPerMeter{0.5});
  EXPECT_EQ(1e-7_J_per_bit, JoulesPerBit{1e-7});
  EXPECT_EQ(3.0_W, Watts{3.0});
  EXPECT_EQ(1.5_mps, MetersPerSecond{1.5});
  EXPECT_EQ(8192.0_bps, BitsPerSecond{8192.0});
  EXPECT_EQ(5_J, Joules{5.0});
  EXPECT_EQ(100_m, Meters{100.0});
}

TEST(Units, BoundaryRoundTripIsBitExact) {
  // The I/O boundary contract: wrap(x).value() is the identical bit
  // pattern, for every representable double.
  for (double x : {0.0, -0.0, 1e-300, 5e-10, 1.0 / 3.0, 1e17,
                   -123.456789e-12}) {
    Joules q{x};
    EXPECT_EQ(q.value(), x);
    // lint:allow(float-equality) — bit-exactness is the property under test.
    EXPECT_TRUE(q.value() == x);
  }
}

// Layout: the refactor's zero-overhead claim, enforced at compile time.
static_assert(sizeof(Quantity<Dim{1, 2, 3, 4}>) == sizeof(double));
static_assert(alignof(Joules) == alignof(double));
static_assert(std::is_trivially_copyable_v<Bits>);

}  // namespace
}  // namespace imobif::util
