// snap codec: typed round trips, layout-mismatch errors, version and magic
// rejection, and the generic JSON debug dump.
#include "snap/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace imobif::snap {
namespace {

TEST(SnapCodec, RoundTripsEveryType) {
  StateWriter w;
  w.begin_section("outer");
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.boolean(true);
  w.boolean(false);
  w.str("hello \0 world");  // NOLINT: embedded NUL truncates at the literal
  w.begin_section("inner");
  w.u64(7);
  w.end_section();
  w.end_section();

  StateReader r(w.data());
  EXPECT_EQ(r.version(), kCodecVersion);
  r.begin_section("outer");
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  const double negzero = r.f64();
  EXPECT_EQ(negzero, 0.0);
  EXPECT_TRUE(std::signbit(negzero));  // bit-exact, not just value-equal
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), std::string("hello "));
  r.begin_section("inner");
  EXPECT_EQ(r.u64(), 7u);
  r.end_section();
  r.end_section();
  EXPECT_TRUE(r.at_end());
}

TEST(SnapCodec, BinaryStringsSurviveRoundTrip) {
  std::string blob;
  for (int i = 0; i < 256; ++i) blob.push_back(static_cast<char>(i));
  StateWriter w;
  w.str(blob);
  StateReader r(w.data());
  EXPECT_EQ(r.str(), blob);
}

TEST(SnapCodec, TagMismatchThrowsWithOffsetAndTypes) {
  StateWriter w;
  w.u64(5);
  StateReader r(w.data());
  try {
    (void)r.f64();
    FAIL() << "expected a tag mismatch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expected f64"), std::string::npos) << what;
    EXPECT_NE(what.find("found u64"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
}

TEST(SnapCodec, SectionNameMismatchThrows) {
  StateWriter w;
  w.begin_section("alpha");
  w.end_section();
  StateReader r(w.data());
  EXPECT_THROW(r.begin_section("beta"), std::runtime_error);
}

TEST(SnapCodec, TruncatedStreamThrows) {
  StateWriter w;
  w.u64(12345);
  const std::string& full = w.data();
  StateReader r(full.substr(0, full.size() - 3));
  EXPECT_THROW((void)r.u64(), std::runtime_error);
}

TEST(SnapCodec, BadMagicRejected) {
  EXPECT_THROW(StateReader("not a snapshot at all"), std::runtime_error);
  EXPECT_THROW(StateReader(""), std::runtime_error);
}

TEST(SnapCodec, UnknownVersionRejectedWithClearError) {
  StateWriter w;
  w.u64(1);
  std::string bytes = w.data();
  bytes[4] = '\x63';  // version 99
  try {
    StateReader r(bytes);
    FAIL() << "expected a version rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported codec version 99"), std::string::npos)
        << what;
    EXPECT_NE(what.find("reads version " + std::to_string(kCodecVersion)),
              std::string::npos)
        << what;
  }
}

TEST(SnapCodec, UnbalancedSectionsRejectedAtWrite) {
  StateWriter w;
  w.begin_section("open");
  EXPECT_THROW(w.write_file("/tmp/snap_codec_test_unbalanced.bin"),
               std::logic_error);
  StateWriter w2;
  EXPECT_THROW(w2.end_section(), std::logic_error);
}

TEST(SnapCodec, DebugDumpRendersSectionsAndScalars) {
  StateWriter w;
  w.begin_section("sim");
  w.i64(-5);
  w.f64(1.5);
  w.boolean(true);
  w.str("abc");
  w.end_section();
  const std::string json = debug_dump(w.data());
  EXPECT_NE(json.find("\"codec_version\": " + std::to_string(kCodecVersion)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"section\": \"sim\""), std::string::npos) << json;
  EXPECT_NE(json.find("-5"), std::string::npos) << json;
  EXPECT_NE(json.find("1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"abc\""), std::string::npos) << json;
}

TEST(SnapCodec, DebugDumpRejectsUnterminatedSection) {
  StateWriter w;
  w.begin_section("open");
  EXPECT_THROW(debug_dump(w.data()), std::runtime_error);
}

TEST(SnapCodec, AtomicFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "snap_codec_rt.bin";
  StateWriter w;
  w.begin_section("s");
  w.u64(99);
  w.end_section();
  w.write_file(path);
  StateReader r = StateReader::from_file(path);
  r.begin_section("s");
  EXPECT_EQ(r.u64(), 99u);
  r.end_section();
  std::remove(path.c_str());
}

TEST(SnapCodec, MissingFileThrows) {
  EXPECT_THROW(StateReader::from_file("/nonexistent/snap.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace imobif::snap
