// Replay bisection: state hashes must stay equal along identical runs,
// detect a perturbed restore immediately, and pinpoint the first
// diverging event between two runs that differ only in the fault seed.
#include "snap/replay.hpp"

#include <gtest/gtest.h>

#include <string>

#include "exp/instance.hpp"
#include "snap/snapshot.hpp"
#include "util/rng.hpp"

namespace imobif::snap {
namespace {

exp::ScenarioParams replay_params(std::uint64_t fault_seed) {
  exp::ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.mean_flow_bits = util::Bits{40.0 * 1024.0 * 8.0};
  p.seed = 42;
  // No warmup: drop decisions happen when deliveries are *scheduled*, so
  // any executed warmup traffic would already split the fault worlds.
  // With zero warmup both runs start from the identical pristine state and
  // diverge at the first differing drop decision during the scan.
  p.warmup_s = util::Seconds{0.0};
  p.fault.loss_rate = 0.25;
  p.fault.seed = fault_seed;
  return p;
}

std::unique_ptr<exp::InstanceRun> make_run(const exp::ScenarioParams& params) {
  util::Rng rng(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, rng);
  return exp::InstanceRun::create(instance, params,
                                  core::MobilityMode::kInformed, {});
}

TEST(SnapReplay, IdenticalRunsNeverDiverge) {
  const exp::ScenarioParams params = replay_params(1);
  auto a = make_run(params);
  auto b = make_run(params);
  const Divergence d = find_divergence(*a, *b);
  EXPECT_FALSE(d.diverged) << d.describe();
  EXPECT_FALSE(d.truncated);
  EXPECT_TRUE(d.finished_a);
  EXPECT_TRUE(d.finished_b);
  EXPECT_NE(d.describe().find("no divergence"), std::string::npos);
}

TEST(SnapReplay, RestoredRunTracksOriginalToCompletion) {
  const exp::ScenarioParams params = replay_params(5);
  auto original = make_run(params);
  original->advance(3000);
  auto restored = restore(encode(*original));
  const Divergence d = find_divergence(*original, *restored);
  EXPECT_FALSE(d.diverged) << d.describe();
}

TEST(SnapReplay, DifferentFaultSeedsBisectToFirstDivergingEvent) {
  // A rare loss keeps the first few events' drop decisions in agreement so
  // the divergence lands deep enough to exercise the truncated pre-scan.
  exp::ScenarioParams pa = replay_params(1001);
  exp::ScenarioParams pb = replay_params(2002);
  pa.fault.loss_rate = pb.fault.loss_rate = 0.01;
  auto a = make_run(pa);
  auto b = make_run(pb);
  // Same topology, same instance, same initial state: the fault seed only
  // influences drop decisions, which are made as traffic flows.
  EXPECT_EQ(state_hash(*a), state_hash(*b));

  const Divergence d = find_divergence(*a, *b);
  ASSERT_TRUE(d.diverged) << d.describe();
  ASSERT_GT(d.event_index, 1u) << d.describe();
  EXPECT_NE(d.hash_a, d.hash_b);
  EXPECT_NE(d.describe().find("diverged at event"), std::string::npos);

  // The scan stopped at the *first* differing event: re-running two fresh
  // copies up to the event before must still agree.
  auto a2 = make_run(pa);
  auto b2 = make_run(pb);
  const Divergence before =
      find_divergence(*a2, *b2, static_cast<std::size_t>(d.event_index) - 1);
  EXPECT_FALSE(before.diverged) << before.describe();
  EXPECT_TRUE(before.truncated);
}

TEST(SnapReplay, PerturbedRestoreIsDetected) {
  const exp::ScenarioParams params = replay_params(9);
  auto original = make_run(params);
  original->advance(2500);
  auto perturbed = restore(encode(*original));
  // Nudge one node's battery by a microjoule — the hash flags it at once.
  net::Node& node = perturbed->network().node(0);
  const energy::Battery& b = node.battery();
  node.battery().restore(b.initial(), b.residual() - util::Joules{1e-6},
                         b.consumed_transmit(), b.consumed_move(),
                         b.consumed_other());
  const Divergence d = find_divergence(*original, *perturbed);
  EXPECT_TRUE(d.diverged);
  EXPECT_EQ(d.event_index,
            original->network().simulator().executed_events());
}

TEST(SnapReplay, MismatchedStartingPointsRejected) {
  const exp::ScenarioParams params = replay_params(3);
  auto a = make_run(params);
  auto b = make_run(params);
  a->advance(100);
  EXPECT_THROW(find_divergence(*a, *b), std::invalid_argument);
}

}  // namespace
}  // namespace imobif::snap
