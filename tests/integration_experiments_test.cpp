// Experiment-harness integration: instance sampling, replay determinism,
// and the qualitative invariants behind the paper's figures.
#include <gtest/gtest.h>

#include "exp/experiments.hpp"

namespace imobif::exp {
namespace {

ScenarioParams small_params() {
  ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.mean_flow_bits = util::Bits{100.0 * 1024.0 * 8.0};
  p.seed = 5;
  return p;
}

TEST(SampleInstance, ProducesRoutableMultiHopPairs) {
  ScenarioParams p = small_params();
  util::Rng rng(p.seed);
  for (int i = 0; i < 10; ++i) {
    const FlowInstance inst = sample_instance(p, rng);
    EXPECT_EQ(inst.positions.size(), p.node_count);
    EXPECT_EQ(inst.energies.size(), p.node_count);
    EXPECT_NE(inst.source, inst.destination);
    ASSERT_GE(inst.initial_path.size(), p.min_hops + 1);
    EXPECT_EQ(inst.initial_path.front(), inst.source);
    EXPECT_EQ(inst.initial_path.back(), inst.destination);
    EXPECT_GE(inst.flow_bits, p.packet_bits);
    // Consecutive path nodes are within radio range.
    for (std::size_t j = 0; j + 1 < inst.initial_path.size(); ++j) {
      EXPECT_LE(geom::distance(inst.positions[inst.initial_path[j]],
                               inst.positions[inst.initial_path[j + 1]]),
                p.comm_range_m.value() + 1e-9);
    }
  }
}

TEST(SampleInstance, EnergiesMatchScenario) {
  ScenarioParams p = small_params();
  util::Rng rng(7);
  const FlowInstance fixed = sample_instance(p, rng);
  for (const util::Joules e : fixed.energies)
    EXPECT_DOUBLE_EQ(e.value(), p.initial_energy_j.value());

  p.random_energy = true;
  p.energy_lo_j = util::Joules{5.0};
  p.energy_hi_j = util::Joules{50.0};
  const FlowInstance random = sample_instance(p, rng);
  for (const util::Joules e : random.energies) {
    EXPECT_GE(e, util::Joules{5.0});
    EXPECT_LE(e, util::Joules{50.0});
  }
}

TEST(SampleInstance, DeterministicGivenRngState) {
  ScenarioParams p = small_params();
  util::Rng a(33), b(33);
  const FlowInstance ia = sample_instance(p, a);
  const FlowInstance ib = sample_instance(p, b);
  EXPECT_EQ(ia.source, ib.source);
  EXPECT_EQ(ia.destination, ib.destination);
  EXPECT_DOUBLE_EQ(ia.flow_bits.value(), ib.flow_bits.value());
  EXPECT_EQ(ia.initial_path, ib.initial_path);
}

TEST(SampleInstance, ThrowsWhenNoPathPossible) {
  ScenarioParams p = small_params();
  p.node_count = 3;
  p.area_m = util::Meters{10000.0};
  util::Rng rng(1);
  EXPECT_THROW(sample_instance(p, rng), std::runtime_error);
}

TEST(RunInstance, DeterministicReplay) {
  ScenarioParams p = small_params();
  util::Rng rng(11);
  const FlowInstance inst = sample_instance(p, rng);
  const RunResult a =
      run_instance(inst, p, core::MobilityMode::kInformed);
  const RunResult b =
      run_instance(inst, p, core::MobilityMode::kInformed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.total_energy_j.value(), b.total_energy_j.value());
  EXPECT_DOUBLE_EQ(a.movement_energy_j.value(), b.movement_energy_j.value());
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.path, b.path);
}

TEST(RunInstance, BaselineHasNoMovement) {
  ScenarioParams p = small_params();
  util::Rng rng(13);
  const FlowInstance inst = sample_instance(p, rng);
  const RunResult r =
      run_instance(inst, p, core::MobilityMode::kNoMobility);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.movement_energy_j.value(), 0.0);
  EXPECT_EQ(r.movements, 0u);
  EXPECT_EQ(r.notifications, 0u);
  EXPECT_GT(r.transmit_energy_j, util::Joules{0.0});
}

TEST(RunInstance, PathTracedSourceToDestination) {
  ScenarioParams p = small_params();
  util::Rng rng(17);
  const FlowInstance inst = sample_instance(p, rng);
  const RunResult r =
      run_instance(inst, p, core::MobilityMode::kNoMobility);
  ASSERT_GE(r.path.size(), 2u);
  EXPECT_EQ(r.path.front(), inst.source);
  EXPECT_EQ(r.path.back(), inst.destination);
}

TEST(RunComparison, InformedNeverMateriallyWorse) {
  // The central claim of the paper: with cost/benefit checking, energy is
  // never materially above the no-mobility baseline (only notification
  // packets can add a sliver).
  ScenarioParams p = small_params();
  const auto points = run_comparison(p, 6);
  ASSERT_EQ(points.size(), 6u);
  for (const auto& pt : points) {
    EXPECT_TRUE(pt.baseline.completed);
    EXPECT_LE(pt.energy_ratio_informed(), 1.02);
    EXPECT_GT(pt.energy_ratio_cost_unaware(), 0.0);
  }
}

TEST(RunComparison, ShortFlowsMakeCostUnawareExpensive) {
  // Fig 6(a): for short flows the cost-unaware approach burns far more
  // energy than the static baseline on average.
  ScenarioParams p = small_params();
  p.mean_flow_bits = util::Bits{50.0 * 1024.0 * 8.0};
  const auto points = run_comparison(p, 6);
  double ratio_sum = 0.0;
  for (const auto& pt : points) ratio_sum += pt.energy_ratio_cost_unaware();
  EXPECT_GT(ratio_sum / 6.0, 1.5);
}

TEST(RunComparison, DeterministicAcrossCalls) {
  ScenarioParams p = small_params();
  const auto a = run_comparison(p, 3);
  const auto b = run_comparison(p, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a[i].flow_bits.value(), b[i].flow_bits.value());
    EXPECT_DOUBLE_EQ(a[i].informed.total_energy_j.value(),
                     b[i].informed.total_energy_j.value());
    EXPECT_DOUBLE_EQ(a[i].cost_unaware.total_energy_j.value(),
                     b[i].cost_unaware.total_energy_j.value());
  }
}

TEST(RunComparison, LifetimeRunsRecordDeaths) {
  ScenarioParams p = small_params();
  p.strategy = net::StrategyId::kMaxLifetime;
  p.random_energy = true;
  p.energy_lo_j = util::Joules{2.0};
  p.energy_hi_j = util::Joules{20.0};
  p.mean_flow_bits = util::Bits{1024.0 * 1024.0 * 8.0};
  RunOptions opt;
  opt.stop_on_first_death = true;
  const auto points = run_comparison(p, 3, opt);
  int deaths = 0;
  for (const auto& pt : points) {
    if (pt.baseline.any_death) ++deaths;
    EXPECT_GT(pt.baseline.lifetime_s, util::Seconds{0.0});
    EXPECT_GT(pt.lifetime_ratio_informed(), 0.0);
  }
  EXPECT_GT(deaths, 0);  // low-energy nodes must actually die
}

TEST(RunPlacement, SnapshotsAreConsistent) {
  ScenarioParams p = small_params();
  p.mean_flow_bits = util::Bits{2.0 * 1024.0 * 1024.0 * 8.0};
  const PlacementSnapshot snap =
      run_placement(p, core::MobilityMode::kCostUnaware);
  ASSERT_GE(snap.path.size(), 4u);
  EXPECT_EQ(snap.initial_positions.size(), snap.path.size());
  EXPECT_EQ(snap.final_positions.size(), snap.path.size());
  EXPECT_EQ(snap.initial_energies.size(), snap.path.size());
  EXPECT_EQ(snap.final_energies.size(), snap.path.size());
  // Source and destination never move.
  EXPECT_EQ(snap.initial_positions.front(), snap.final_positions.front());
  EXPECT_EQ(snap.initial_positions.back(), snap.final_positions.back());
  // Relays did move (cost-unaware, long flow).
  double moved = 0.0;
  for (std::size_t i = 1; i + 1 < snap.path.size(); ++i) {
    moved += geom::distance(snap.initial_positions[i],
                            snap.final_positions[i]);
  }
  EXPECT_GT(moved, 1.0);
}

TEST(ScenarioParams, ValidationCatchesBadConfigs) {
  ScenarioParams p = small_params();
  p.node_count = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_params();
  p.rate_bps = util::BitsPerSecond{0.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_params();
  p.random_energy = true;
  p.energy_hi_j = p.energy_lo_j - util::Joules{1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_params();
  p.length_estimate_factor = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace imobif::exp
