#include "util/args.hpp"

#include <gtest/gtest.h>

namespace imobif::util {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, EqualsForm) {
  const Args a = parse({"prog", "--k=0.5", "--name=test"});
  EXPECT_DOUBLE_EQ(a.get_double("k", 0.0), 0.5);
  EXPECT_EQ(a.get_string("name"), "test");
  EXPECT_EQ(a.program(), "prog");
}

TEST(Args, SpaceForm) {
  const Args a = parse({"prog", "--flows", "50", "--strategy", "lifetime"});
  EXPECT_EQ(a.get_int("flows", 0), 50);
  EXPECT_EQ(a.get_string("strategy"), "lifetime");
}

TEST(Args, BareFlagIsTrue) {
  const Args a = parse({"prog", "--verbose", "--dry-run"});
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_TRUE(a.get_bool("dry-run"));
  EXPECT_FALSE(a.get_bool("absent"));
}

TEST(Args, BareFlagBeforeAnotherFlag) {
  const Args a = parse({"prog", "--lifetime", "--flows", "10"});
  EXPECT_TRUE(a.get_bool("lifetime"));
  EXPECT_EQ(a.get_int("flows", 0), 10);
}

TEST(Args, ExplicitBooleanValues) {
  const Args a = parse({"prog", "--x=false", "--y=1", "--z", "no"});
  EXPECT_FALSE(a.get_bool("x", true));
  EXPECT_TRUE(a.get_bool("y", false));
  EXPECT_FALSE(a.get_bool("z", true));
}

TEST(Args, Positionals) {
  const Args a = parse({"prog", "input.txt", "--k=1", "output.txt"});
  EXPECT_EQ(a.positional(),
            (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(Args, DoubleDashEndsFlagParsing) {
  const Args a = parse({"prog", "--k=1", "--", "--not-a-flag"});
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"--not-a-flag"}));
  EXPECT_FALSE(a.has("not-a-flag"));
}

TEST(Args, TypeErrorsThrow) {
  const Args a = parse({"prog", "--k=abc", "--n=xyz", "--b=maybe"});
  EXPECT_THROW(a.get_double("k", 0.0), std::invalid_argument);
  EXPECT_THROW(a.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(a.get_bool("b"), std::invalid_argument);
}

TEST(Args, FallbacksForAbsentKeys) {
  const Args a = parse({"prog"});
  EXPECT_DOUBLE_EQ(a.get_double("k", 2.5), 2.5);
  EXPECT_EQ(a.get_int("n", 7), 7);
  EXPECT_EQ(a.get_string("s", "dflt"), "dflt");
}

TEST(Args, KeysListsAllFlags) {
  const Args a = parse({"prog", "--x=1", "--y", "2"});
  auto keys = a.keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<std::string>{"x", "y"}));
}

TEST(Args, EmptyArgvSafe) {
  const Args a(0, nullptr);
  EXPECT_TRUE(a.positional().empty());
  EXPECT_TRUE(a.program().empty());
}

}  // namespace
}  // namespace imobif::util
