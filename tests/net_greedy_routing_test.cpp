#include "net/greedy_routing.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace imobif::net {
namespace {

using test::line_positions;
using test::make_harness;

// Populate every node's neighbor table from ground truth.
void sync_neighbors(Network& network) {
  network.start_hellos();
  network.simulator().run(network.simulator().now() +
                          sim::Time::from_seconds(15.0));
}

TEST(GreedyRouting, ForwardsToNeighborClosestToDest) {
  auto h = make_harness(line_positions(4, 450.0));  // 0-150-300-450
  sync_neighbors(h.net());
  GreedyRouting routing(h.net().medium());
  EXPECT_EQ(routing.next_hop(h.net().node(0), 3), 1u);
  EXPECT_EQ(routing.next_hop(h.net().node(1), 3), 2u);
}

TEST(GreedyRouting, DeliversDirectlyWhenDestInRange) {
  auto h = make_harness(line_positions(4, 450.0));
  sync_neighbors(h.net());
  GreedyRouting routing(h.net().medium());
  EXPECT_EQ(routing.next_hop(h.net().node(2), 3), 3u);
}

TEST(GreedyRouting, DeadEndReturnsInvalid) {
  // Node 1 is a local optimum: its only neighbor (0) is farther from dest.
  auto h = make_harness({{0, 0}, {150, 0}, {900, 0}});
  sync_neighbors(h.net());
  GreedyRouting routing(h.net().medium());
  EXPECT_EQ(routing.next_hop(h.net().node(1), 2), kInvalidNode);
}

TEST(GreedyRouting, NoBackwardProgress) {
  // A neighbor farther from the destination than self is never chosen.
  auto h = make_harness({{100, 0}, {0, 0}, {250, 0}});
  sync_neighbors(h.net());
  GreedyRouting routing(h.net().medium());
  EXPECT_EQ(routing.next_hop(h.net().node(0), 2), 2u);  // direct, in range
}

TEST(GreedyRouting, EmptyNeighborTableFails) {
  auto h = make_harness(line_positions(4, 450.0));
  GreedyRouting routing(h.net().medium());
  // No hellos ran: tables empty.
  EXPECT_EQ(routing.next_hop(h.net().node(0), 3), kInvalidNode);
}

TEST(GreedyPathOracle, FindsMultiHopPath) {
  auto h = make_harness(line_positions(5, 600.0));
  const auto path = greedy_path_oracle(h.net().medium(), 0, 4);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(GreedyPathOracle, DirectWhenInRange) {
  auto h = make_harness({{0, 0}, {100, 0}});
  const auto path = greedy_path_oracle(h.net().medium(), 0, 1);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1}));
}

TEST(GreedyPathOracle, DeadEndReturnsEmpty) {
  auto h = make_harness({{0, 0}, {150, 0}, {900, 0}});
  EXPECT_TRUE(greedy_path_oracle(h.net().medium(), 0, 2).empty());
}

TEST(GreedyPathOracle, SkipsDeadNodes) {
  auto h = make_harness(line_positions(5, 600.0));
  h.net().node(2).battery().draw(util::Joules{1e9},
                                 energy::DrawKind::kOther);
  // With relay 2 dead the chain is broken (hops of 300 m exceed range).
  EXPECT_TRUE(greedy_path_oracle(h.net().medium(), 0, 4).empty());
}

TEST(LineBiasedGreedy, PrefersOnLineRelay) {
  // Two candidate relays make identical forward progress; the line-biased
  // variant must pick the one on the source-destination line.
  //   src(0,0) -> dest(300,0); A=(150,0) on-line, B=(160,50) off-line.
  // B sits slightly closer to the destination, so plain greedy picks B
  // while the line-biased variant picks A.
  auto h = make_harness({{0, 0}, {150, 0}, {160, 50}, {300, 0}});
  sync_neighbors(h.net());
  GreedyRouting plain(h.net().medium());
  LineBiasedGreedyRouting biased(h.net().medium(), 2.0);
  const NodeId plain_pick = plain.next_hop(h.net().node(0), 3);
  const NodeId biased_pick = biased.next_hop(h.net().node(0), 3);
  EXPECT_EQ(biased_pick, 1u);
  EXPECT_EQ(plain_pick, 2u);
}

TEST(LineBiasedGreedy, ZeroWeightMatchesPlainGreedy) {
  auto h = make_harness({{0, 0}, {150, 0}, {160, 50}, {300, 0}});
  sync_neighbors(h.net());
  GreedyRouting plain(h.net().medium());
  LineBiasedGreedyRouting biased(h.net().medium(), 0.0);
  EXPECT_EQ(biased.next_hop(h.net().node(0), 3),
            plain.next_hop(h.net().node(0), 3));
}

TEST(LineBiasedGreedy, StillRequiresProgress) {
  auto h = make_harness({{0, 0}, {150, 0}, {900, 0}});
  sync_neighbors(h.net());
  LineBiasedGreedyRouting biased(h.net().medium(), 2.0);
  EXPECT_EQ(biased.next_hop(h.net().node(1), 2), kInvalidNode);
}

}  // namespace
}  // namespace imobif::net
