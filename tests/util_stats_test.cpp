#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace imobif::util {
namespace {

TEST(Summary, EmptyDefaults) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Empirical, QuantileInterpolation) {
  Empirical e;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) e.add(v);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(e.median(), 3.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.125), 1.5);  // interpolated
}

TEST(Empirical, QuantileThrowsOnEmpty) {
  Empirical e;
  EXPECT_THROW(e.quantile(0.5), std::logic_error);
}

TEST(Empirical, CdfStepBehaviour) {
  Empirical e;
  e.add_all({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(e.cdf(99.0), 1.0);
}

TEST(Empirical, Fractions) {
  Empirical e;
  e.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.fraction_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.fraction_above(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.fraction_below(1.0), 0.0);   // strictly below
  EXPECT_DOUBLE_EQ(e.fraction_above(4.0), 0.0);   // strictly above
  EXPECT_DOUBLE_EQ(e.fraction_below(5.0), 1.0);
}

TEST(Empirical, MeanAndSorted) {
  Empirical e;
  e.add(3.0);
  e.add(1.0);
  e.add(2.0);
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
  const auto& s = e.sorted();
  EXPECT_EQ(s, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(PowerFit, RecoversExactLaw) {
  // y = 2.5 * x^1.7
  std::vector<double> xs, ys;
  for (double x = 1.0; x <= 10.0; x += 0.5) {
    xs.push_back(x);
    ys.push_back(2.5 * std::pow(x, 1.7));
  }
  const PowerFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.7, 1e-9);
  EXPECT_NEAR(fit.coefficient, 2.5, 1e-9);
}

TEST(PowerFit, RecoversUnderNoise) {
  util::Rng rng(99);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(1.0, 100.0);
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 2.0) * (1.0 + rng.uniform(-0.05, 0.05)));
  }
  const PowerFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 2.0, 0.05);
  EXPECT_NEAR(fit.coefficient, 3.0, 0.3);
}

TEST(PowerFit, Validation) {
  EXPECT_THROW(fit_power_law({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1.0, -2.0}, {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_power_law({1.0, 1.0}, {2.0, 3.0}),
               std::invalid_argument);  // degenerate x
}

// Property: quantiles are monotone in q.
TEST(EmpiricalProperty, QuantileMonotone) {
  util::Rng rng(7);
  Empirical e;
  for (int i = 0; i < 500; ++i) e.add(rng.uniform(-10, 10));
  double prev = e.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = e.quantile(q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(BootstrapCi, ContainsSampleMean) {
  util::Rng rng(31);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(rng.uniform(0.0, 10.0));
  double mean = 0.0;
  for (double v : samples) mean += v;
  mean /= static_cast<double>(samples.size());
  const Interval ci = bootstrap_mean_ci(samples);
  EXPECT_LE(ci.lo, mean);
  EXPECT_GE(ci.hi, mean);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(BootstrapCi, NarrowsWithSampleSize) {
  util::Rng rng(32);
  std::vector<double> small, large;
  for (int i = 0; i < 20; ++i) small.push_back(rng.exponential(3.0));
  for (int i = 0; i < 2000; ++i) large.push_back(rng.exponential(3.0));
  const Interval s = bootstrap_mean_ci(small);
  const Interval l = bootstrap_mean_ci(large);
  EXPECT_LT(l.hi - l.lo, s.hi - s.lo);
}

TEST(BootstrapCi, DeterministicInSeed) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0};
  const Interval a = bootstrap_mean_ci(samples, 0.95, 500, 7);
  const Interval b = bootstrap_mean_ci(samples, 0.95, 500, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapCi, ConstantSampleDegenerates) {
  const std::vector<double> samples{4.0, 4.0, 4.0};
  const Interval ci = bootstrap_mean_ci(samples);
  EXPECT_DOUBLE_EQ(ci.lo, 4.0);
  EXPECT_DOUBLE_EQ(ci.hi, 4.0);
}

TEST(KsStatistic, IdenticalSamplesAreZero) {
  const std::vector<double> s{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_statistic(s, s), 0.0);
}

TEST(KsStatistic, DisjointSamplesAreOne) {
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 2.0}, {10.0, 11.0}), 1.0);
  EXPECT_DOUBLE_EQ(ks_statistic({10.0, 11.0}, {1.0, 2.0}), 1.0);
}

TEST(KsStatistic, KnownSmallCase) {
  // a = {1, 3}, b = {2, 4}: after x=1 CDFs are (0.5, 0); after 2: (0.5,
  // 0.5); after 3: (1, 0.5); after 4: (1, 1). Max gap 0.5.
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 3.0}, {2.0, 4.0}), 0.5);
}

TEST(KsStatistic, SymmetricAndBounded) {
  util::Rng rng(44);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(rng.uniform(0.0, 1.0));
    b.push_back(rng.uniform(0.2, 1.2));
  }
  const double ab = ks_statistic(a, b);
  const double ba = ks_statistic(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GT(ab, 0.05);  // shifted distributions separate
  EXPECT_LE(ab, 1.0);
}

TEST(KsStatistic, SameDistributionIsSmall) {
  util::Rng rng(45);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.exponential(2.0));
    b.push_back(rng.exponential(2.0));
  }
  EXPECT_LT(ks_statistic(a, b), 0.08);
}

TEST(KsStatistic, EmptyThrows) {
  EXPECT_THROW(ks_statistic({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(ks_statistic({1.0}, {}), std::invalid_argument);
}

TEST(BootstrapCi, Validation) {
  EXPECT_THROW(bootstrap_mean_ci({}), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 0.95, 0), std::invalid_argument);
}

// Property: Summary mean equals Empirical mean on the same data.
TEST(StatsProperty, SummaryMatchesEmpirical) {
  util::Rng rng(8);
  Summary s;
  Empirical e;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.exponential(2.0);
    s.add(v);
    e.add(v);
  }
  EXPECT_NEAR(s.mean(), e.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), e.min());
  EXPECT_DOUBLE_EQ(s.max(), e.max());
}

}  // namespace
}  // namespace imobif::util
