// TraceRecorder and scenario-config binding tests.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/scenario_io.hpp"
#include "exp/trace.hpp"
#include "test_helpers.hpp"

namespace imobif::exp {
namespace {

using test::default_flow;
using test::line_positions;
using test::make_harness;
using util::Seconds;

TEST(TraceRecorder, CapturesDeliveries) {
  auto h = make_harness(line_positions(3, 300.0));
  TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 3));
  h.net().run_flows(Seconds{60.0});

  EXPECT_EQ(trace.count(TraceRecorder::Kind::kDelivered), 3u);
  ASSERT_FALSE(trace.entries().empty());
  const auto& first = trace.entries().front();
  EXPECT_EQ(first.kind, TraceRecorder::Kind::kDelivered);
  EXPECT_EQ(first.node, 2u);
  EXPECT_EQ(first.flow, 1u);
  EXPECT_NE(first.detail.find("seq=0"), std::string::npos);
  EXPECT_GT(first.time_s, 0.0);
}

TEST(TraceRecorder, CapturesNotifications) {
  // A long flow over a bent path in the informed mode produces at least
  // one enable notification (see core_policy_test).
  std::vector<geom::Vec2> bent{{0, 0}, {130, 50}, {260, -50}, {390, 0}};
  test::HarnessOptions opts;
  opts.mode = core::MobilityMode::kInformed;
  auto h = make_harness(bent, opts);
  TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 4000));
  h.net().run_flows(Seconds{8192.0 * 4000 / 8192.0 * 4.0});

  EXPECT_GE(trace.count(TraceRecorder::Kind::kNotificationInitiated), 1u);
  EXPECT_GE(trace.count(TraceRecorder::Kind::kNotificationAtSource), 1u);
}

TEST(TraceRecorder, CapturesDeaths) {
  test::HarnessOptions opts;
  opts.initial_energy_j = util::Joules{0.2};
  auto h = make_harness(line_positions(3, 300.0), opts);
  TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(Seconds{5.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 1000));
  h.net().run_flows(Seconds{300.0}, Seconds{30.0});
  EXPECT_GE(trace.count(TraceRecorder::Kind::kNodeDepleted), 1u);
}

TEST(TraceRecorder, TableRendersAllRows) {
  auto h = make_harness(line_positions(3, 300.0));
  TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 2));
  h.net().run_flows(Seconds{60.0});
  const util::Table table = trace.to_table();
  EXPECT_EQ(table.row_count(), trace.entries().size());
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("delivered"), std::string::npos);
}

TEST(TraceRecorder, JsonlRoundTripsExactly) {
  // A bent-path informed run produces a mix of kinds (deliveries plus
  // notification traffic), so the round trip covers flow-less entries too.
  std::vector<geom::Vec2> bent{{0, 0}, {130, 50}, {260, -50}, {390, 0}};
  test::HarnessOptions opts;
  opts.mode = core::MobilityMode::kInformed;
  auto h = make_harness(bent, opts);
  TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 4000));
  h.net().run_flows(Seconds{8192.0 * 4000 / 8192.0 * 4.0});
  ASSERT_GE(trace.entries().size(), 2u);

  const std::string jsonl = trace.to_jsonl();
  const std::vector<TraceRecorder::Entry> parsed =
      TraceRecorder::parse_jsonl(jsonl);
  ASSERT_EQ(parsed.size(), trace.entries().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const auto& original = trace.entries()[i];
    EXPECT_EQ(parsed[i].time_s, original.time_s);  // bit-exact, not near
    EXPECT_EQ(parsed[i].kind, original.kind);
    EXPECT_EQ(parsed[i].node, original.node);
    EXPECT_EQ(parsed[i].flow, original.flow);
    EXPECT_EQ(parsed[i].detail, original.detail);
  }
  EXPECT_EQ(TraceRecorder::parse_jsonl(jsonl + "\n\n").size(), parsed.size())
      << "blank lines must be skipped";
}

TEST(TraceRecorder, ParseJsonlRejectsMalformedLines) {
  EXPECT_THROW(TraceRecorder::parse_jsonl("not json\n"),
               std::invalid_argument);
  EXPECT_THROW(TraceRecorder::parse_jsonl(
                   R"({"time_s":1,"event":"warp","node":0,"flow":null,)"
                   R"("detail":""})"),
               std::invalid_argument);
}

TEST(TraceRecorder, ClearEmpties) {
  TraceRecorder trace;
  auto h = make_harness(line_positions(3, 300.0));
  h.net().set_event_tap(&trace);
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0));
  h.net().run_flows(Seconds{30.0});
  EXPECT_FALSE(trace.entries().empty());
  trace.clear();
  EXPECT_TRUE(trace.entries().empty());
}

TEST(ScenarioIo, AppliesOverrides) {
  ScenarioParams p;
  const util::Config config = util::Config::from_string(
      "k = 0.1\n"
      "radio_alpha = 3\n"
      "radio_b = 3e-12\n"
      "mean_flow_kb = 1024\n"
      "strategy = max-lifetime\n"
      "random_energy = true\n"
      "notification_min_gap = 4\n"
      "exact_lifetime_split = yes\n"
      "seed = 77\n");
  apply_config(config, p);
  EXPECT_DOUBLE_EQ(p.mobility.k, 0.1);
  EXPECT_DOUBLE_EQ(p.radio.alpha, 3.0);
  EXPECT_DOUBLE_EQ(p.radio.b, 3e-12);
  EXPECT_DOUBLE_EQ(p.mean_flow_bits.value(), 1024.0 * 1024.0 * 8.0);
  EXPECT_EQ(p.strategy, net::StrategyId::kMaxLifetime);
  EXPECT_TRUE(p.random_energy);
  EXPECT_EQ(p.notification_min_gap, 4u);
  EXPECT_TRUE(p.exact_lifetime_split);
  EXPECT_EQ(p.seed, 77u);
}

TEST(ScenarioIo, AbsentKeysKeepDefaults) {
  ScenarioParams p;
  const ScenarioParams before = p;
  apply_config(util::Config::from_string(""), p);
  EXPECT_DOUBLE_EQ(p.mobility.k, before.mobility.k);
  EXPECT_EQ(p.node_count, before.node_count);
  EXPECT_EQ(p.strategy, before.strategy);
}

TEST(ScenarioIo, UnknownStrategyThrows) {
  ScenarioParams p;
  EXPECT_THROW(
      apply_config(util::Config::from_string("strategy = warp\n"), p),
      std::invalid_argument);
}

TEST(ScenarioIo, ConfigStringRoundTrips) {
  ScenarioParams p;
  p.mobility.k = 0.1;
  p.strategy = net::StrategyId::kMaxLifetime;
  p.exact_lifetime_split = true;
  p.seed = 123;
  p.mean_flow_bits = util::Bits{512.0 * 1024.0 * 8.0};

  ScenarioParams q;  // defaults differ from p
  apply_config(util::Config::from_string(to_config_string(p)), q);
  EXPECT_DOUBLE_EQ(q.mobility.k, p.mobility.k);
  EXPECT_EQ(q.strategy, p.strategy);
  EXPECT_TRUE(q.exact_lifetime_split);
  EXPECT_EQ(q.seed, 123u);
  EXPECT_DOUBLE_EQ(q.mean_flow_bits.value(), p.mean_flow_bits.value());
  EXPECT_DOUBLE_EQ(q.radio.b, p.radio.b);
}

TEST(ScenarioIo, EveryOptionalKeyRoundTrips) {
  // Exercise every optional scenario key at once: the full fault plan
  // (independent loss, Gilbert–Elliott, a crash schedule), the
  // notification retry knobs, and multiflow blending — all with values
  // chosen to be awkward (non-defaults, fractional, shortest-round-trip
  // sensitive).
  ScenarioParams p;
  p.fault.loss_rate = 0.123456789;
  p.fault.gilbert_elliott = true;
  p.fault.p_good_to_bad = 0.07;
  p.fault.p_bad_to_good = 0.31;
  p.fault.loss_good = 0.015;
  p.fault.loss_bad = 0.775;
  p.fault.seed = 991;
  p.fault.crashes = {{3, 12.5, -1.0}, {7, 30.25, 5.125}, {11, 0.1, 0.0}};
  p.notify_retry_cap = 9;
  p.notify_retry_timeout_s = util::Seconds{1.75};
  p.multi_flow_blending = true;
  p.random_energy = true;
  p.energy_lo_j = util::Joules{123.25};
  p.energy_hi_j = util::Joules{456.75};
  p.position_error_m = util::Meters{2.5};

  ScenarioParams q;  // starts at defaults
  apply_config(util::Config::from_string(to_config_string(p)), q);

  EXPECT_DOUBLE_EQ(q.fault.loss_rate, p.fault.loss_rate);
  EXPECT_TRUE(q.fault.gilbert_elliott);
  EXPECT_DOUBLE_EQ(q.fault.p_good_to_bad, p.fault.p_good_to_bad);
  EXPECT_DOUBLE_EQ(q.fault.p_bad_to_good, p.fault.p_bad_to_good);
  EXPECT_DOUBLE_EQ(q.fault.loss_good, p.fault.loss_good);
  EXPECT_DOUBLE_EQ(q.fault.loss_bad, p.fault.loss_bad);
  EXPECT_EQ(q.fault.seed, 991u);
  ASSERT_EQ(q.fault.crashes.size(), p.fault.crashes.size());
  for (std::size_t i = 0; i < p.fault.crashes.size(); ++i) {
    EXPECT_EQ(q.fault.crashes[i].node, p.fault.crashes[i].node);
    EXPECT_EQ(q.fault.crashes[i].at_s, p.fault.crashes[i].at_s);
    EXPECT_EQ(q.fault.crashes[i].duration_s, p.fault.crashes[i].duration_s);
  }
  EXPECT_EQ(q.notify_retry_cap, 9u);
  EXPECT_DOUBLE_EQ(q.notify_retry_timeout_s.value(), 1.75);
  EXPECT_TRUE(q.multi_flow_blending);
  EXPECT_TRUE(q.random_energy);
  EXPECT_DOUBLE_EQ(q.energy_lo_j.value(), 123.25);
  EXPECT_DOUBLE_EQ(q.energy_hi_j.value(), 456.75);
  EXPECT_DOUBLE_EQ(q.position_error_m.value(), 2.5);

  // The decisive check (what snapshot embedding relies on): a second
  // generation of the config string is byte-identical to the first.
  EXPECT_EQ(to_config_string(q), to_config_string(p));
}

TEST(ScenarioIo, CrashListRoundTripsThroughFormatter) {
  const std::vector<net::FaultPlan::CrashEvent> crashes = {
      {1, 0.5, -1.0}, {2, 100.125, 30.0}};
  const std::vector<net::FaultPlan::CrashEvent> parsed =
      parse_crashes(format_crashes(crashes));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].node, 1u);
  EXPECT_EQ(parsed[0].at_s, 0.5);
  EXPECT_EQ(parsed[0].duration_s, -1.0);
  EXPECT_EQ(parsed[1].node, 2u);
  EXPECT_EQ(parsed[1].at_s, 100.125);
  EXPECT_EQ(parsed[1].duration_s, 30.0);
  EXPECT_THROW(parse_crashes("5:1.0"), std::invalid_argument);
}

}  // namespace
}  // namespace imobif::exp
