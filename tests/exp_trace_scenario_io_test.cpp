// TraceRecorder and scenario-config binding tests.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/scenario_io.hpp"
#include "exp/trace.hpp"
#include "test_helpers.hpp"

namespace imobif::exp {
namespace {

using test::default_flow;
using test::line_positions;
using test::make_harness;

TEST(TraceRecorder, CapturesDeliveries) {
  auto h = make_harness(line_positions(3, 300.0));
  TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(25.0);
  h.net().start_flow(default_flow(h.net(), 8192.0 * 3));
  h.net().run_flows(60.0);

  EXPECT_EQ(trace.count(TraceRecorder::Kind::kDelivered), 3u);
  ASSERT_FALSE(trace.entries().empty());
  const auto& first = trace.entries().front();
  EXPECT_EQ(first.kind, TraceRecorder::Kind::kDelivered);
  EXPECT_EQ(first.node, 2u);
  EXPECT_EQ(first.flow, 1u);
  EXPECT_NE(first.detail.find("seq=0"), std::string::npos);
  EXPECT_GT(first.time_s, 0.0);
}

TEST(TraceRecorder, CapturesNotifications) {
  // A long flow over a bent path in the informed mode produces at least
  // one enable notification (see core_policy_test).
  std::vector<geom::Vec2> bent{{0, 0}, {130, 50}, {260, -50}, {390, 0}};
  test::HarnessOptions opts;
  opts.mode = core::MobilityMode::kInformed;
  auto h = make_harness(bent, opts);
  TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(25.0);
  h.net().start_flow(default_flow(h.net(), 8192.0 * 4000));
  h.net().run_flows(8192.0 * 4000 / 8192.0 * 4.0);

  EXPECT_GE(trace.count(TraceRecorder::Kind::kNotificationInitiated), 1u);
  EXPECT_GE(trace.count(TraceRecorder::Kind::kNotificationAtSource), 1u);
}

TEST(TraceRecorder, CapturesDeaths) {
  test::HarnessOptions opts;
  opts.initial_energy_j = 0.2;
  auto h = make_harness(line_positions(3, 300.0), opts);
  TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(5.0);
  h.net().start_flow(default_flow(h.net(), 8192.0 * 1000));
  h.net().run_flows(300.0, 30.0);
  EXPECT_GE(trace.count(TraceRecorder::Kind::kNodeDepleted), 1u);
}

TEST(TraceRecorder, TableRendersAllRows) {
  auto h = make_harness(line_positions(3, 300.0));
  TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(25.0);
  h.net().start_flow(default_flow(h.net(), 8192.0 * 2));
  h.net().run_flows(60.0);
  const util::Table table = trace.to_table();
  EXPECT_EQ(table.row_count(), trace.entries().size());
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("delivered"), std::string::npos);
}

TEST(TraceRecorder, ClearEmpties) {
  TraceRecorder trace;
  auto h = make_harness(line_positions(3, 300.0));
  h.net().set_event_tap(&trace);
  h.net().warmup(25.0);
  h.net().start_flow(default_flow(h.net(), 8192.0));
  h.net().run_flows(30.0);
  EXPECT_FALSE(trace.entries().empty());
  trace.clear();
  EXPECT_TRUE(trace.entries().empty());
}

TEST(ScenarioIo, AppliesOverrides) {
  ScenarioParams p;
  const util::Config config = util::Config::from_string(
      "k = 0.1\n"
      "radio_alpha = 3\n"
      "radio_b = 3e-12\n"
      "mean_flow_kb = 1024\n"
      "strategy = max-lifetime\n"
      "random_energy = true\n"
      "notification_min_gap = 4\n"
      "exact_lifetime_split = yes\n"
      "seed = 77\n");
  apply_config(config, p);
  EXPECT_DOUBLE_EQ(p.mobility.k, 0.1);
  EXPECT_DOUBLE_EQ(p.radio.alpha, 3.0);
  EXPECT_DOUBLE_EQ(p.radio.b, 3e-12);
  EXPECT_DOUBLE_EQ(p.mean_flow_bits, 1024.0 * 1024.0 * 8.0);
  EXPECT_EQ(p.strategy, net::StrategyId::kMaxLifetime);
  EXPECT_TRUE(p.random_energy);
  EXPECT_EQ(p.notification_min_gap, 4u);
  EXPECT_TRUE(p.exact_lifetime_split);
  EXPECT_EQ(p.seed, 77u);
}

TEST(ScenarioIo, AbsentKeysKeepDefaults) {
  ScenarioParams p;
  const ScenarioParams before = p;
  apply_config(util::Config::from_string(""), p);
  EXPECT_DOUBLE_EQ(p.mobility.k, before.mobility.k);
  EXPECT_EQ(p.node_count, before.node_count);
  EXPECT_EQ(p.strategy, before.strategy);
}

TEST(ScenarioIo, UnknownStrategyThrows) {
  ScenarioParams p;
  EXPECT_THROW(
      apply_config(util::Config::from_string("strategy = warp\n"), p),
      std::invalid_argument);
}

TEST(ScenarioIo, ConfigStringRoundTrips) {
  ScenarioParams p;
  p.mobility.k = 0.1;
  p.strategy = net::StrategyId::kMaxLifetime;
  p.exact_lifetime_split = true;
  p.seed = 123;
  p.mean_flow_bits = 512.0 * 1024.0 * 8.0;

  ScenarioParams q;  // defaults differ from p
  apply_config(util::Config::from_string(to_config_string(p)), q);
  EXPECT_DOUBLE_EQ(q.mobility.k, p.mobility.k);
  EXPECT_EQ(q.strategy, p.strategy);
  EXPECT_TRUE(q.exact_lifetime_split);
  EXPECT_EQ(q.seed, 123u);
  EXPECT_DOUBLE_EQ(q.mean_flow_bits, p.mean_flow_bits);
  EXPECT_DOUBLE_EQ(q.radio.b, p.radio.b);
}

}  // namespace
}  // namespace imobif::exp
