// Typed protocol messages: field-exact round trips through the snap
// payload codec, plus the decode failure taxonomy (wrong frame type,
// garbage payload, trailing bytes).
#include <gtest/gtest.h>

#include <string>

#include "exp/runner.hpp"
#include "svc/errors.hpp"
#include "svc/frame.hpp"
#include "svc/messages.hpp"

namespace {

using namespace imobif;

TEST(SvcMessages, HelloRoundTrips) {
  svc::HelloMsg msg;
  msg.role = svc::PeerRole::kWorker;
  msg.name = "bench-box-3";
  const svc::HelloMsg back = svc::HelloMsg::from_frame(msg.to_frame());
  EXPECT_EQ(back.role, svc::PeerRole::kWorker);
  EXPECT_EQ(back.name, "bench-box-3");
}

TEST(SvcMessages, HelloAckRoundTrips) {
  svc::HelloAckMsg msg;
  msg.peer_id = 0xfeedbeefcafe1234ull;
  EXPECT_EQ(svc::HelloAckMsg::from_frame(msg.to_frame()).peer_id,
            msg.peer_id);
}

TEST(SvcMessages, SubmitRoundTrips) {
  svc::SubmitMsg msg;
  msg.bench_name = "fig6";
  msg.scenario_text = "node_count = 30\nseed = 7\n";
  msg.instances = 40;
  msg.unit_size = 5;
  msg.options.stop_on_first_death = true;
  msg.options.horizon_factor = 2.5;
  msg.options.horizon_slack_s = 120.0;
  msg.options.multi_flow_blending = true;
  const svc::SubmitMsg back = svc::SubmitMsg::from_frame(msg.to_frame());
  EXPECT_EQ(back.bench_name, "fig6");
  EXPECT_EQ(back.scenario_text, msg.scenario_text);
  EXPECT_EQ(back.instances, 40u);
  EXPECT_EQ(back.unit_size, 5u);
  EXPECT_TRUE(back.options.stop_on_first_death);
  EXPECT_EQ(back.options.horizon_factor, 2.5);
  EXPECT_EQ(back.options.horizon_slack_s, 120.0);
  EXPECT_TRUE(back.options.multi_flow_blending);
}

TEST(SvcMessages, RunOptionsWireMapsToRunOptions) {
  svc::RunOptionsWire wire;
  wire.stop_on_first_death = true;
  wire.horizon_factor = 3.0;
  wire.horizon_slack_s = 60.0;
  const exp::RunOptions options = wire.to_run_options();
  EXPECT_TRUE(options.stop_on_first_death);
  EXPECT_EQ(options.horizon_factor, 3.0);
  EXPECT_EQ(options.horizon_slack_s.value(), 60.0);
  EXPECT_TRUE(options.extra_flows.empty());

  const svc::RunOptionsWire back =
      svc::RunOptionsWire::from_run_options(options);
  EXPECT_TRUE(back.stop_on_first_death);
  EXPECT_EQ(back.horizon_factor, 3.0);
  EXPECT_EQ(back.horizon_slack_s, 60.0);
}

TEST(SvcMessages, AssignUnitRoundTrips) {
  svc::AssignUnitMsg msg;
  msg.sweep_id = 3;
  msg.unit_index = 7;
  msg.begin = 28;
  msg.end = 32;
  msg.scenario_text = "seed = 11\n";
  msg.checkpoint_scope = "swp3-";
  const svc::AssignUnitMsg back =
      svc::AssignUnitMsg::from_frame(msg.to_frame());
  EXPECT_EQ(back.sweep_id, 3u);
  EXPECT_EQ(back.unit_index, 7u);
  EXPECT_EQ(back.begin, 28u);
  EXPECT_EQ(back.end, 32u);
  EXPECT_EQ(back.scenario_text, "seed = 11\n");
  EXPECT_EQ(back.checkpoint_scope, "swp3-");
}

TEST(SvcMessages, AssignUnitRejectsInvertedRange) {
  svc::AssignUnitMsg msg;
  msg.begin = 10;
  msg.end = 5;
  try {
    (void)svc::AssignUnitMsg::from_frame(msg.to_frame());
    FAIL() << "inverted range decoded";
  } catch (const svc::SvcError& e) {
    EXPECT_EQ(e.code(), svc::ErrCode::kBadMessage);
  }
}

TEST(SvcMessages, ProgressAndResultRoundTrip) {
  svc::UnitProgressMsg progress;
  progress.sweep_id = 1;
  progress.unit_index = 2;
  progress.instances_done = 3;
  const svc::UnitProgressMsg progress_back =
      svc::UnitProgressMsg::from_frame(progress.to_frame());
  EXPECT_EQ(progress_back.unit_index, 2u);
  EXPECT_EQ(progress_back.instances_done, 3u);

  svc::UnitResultMsg result;
  result.sweep_id = 1;
  result.unit_index = 2;
  result.points_blob = std::string("\x00\x01\x02binary", 9);
  const svc::UnitResultMsg result_back =
      svc::UnitResultMsg::from_frame(result.to_frame());
  EXPECT_EQ(result_back.points_blob, result.points_blob);

  svc::ProgressMsg sweep_progress;
  sweep_progress.sweep_id = 9;
  sweep_progress.instances_done = 12;
  sweep_progress.instances_total = 40;
  sweep_progress.units_done = 2;
  sweep_progress.units_total = 8;
  const svc::ProgressMsg sp_back =
      svc::ProgressMsg::from_frame(sweep_progress.to_frame());
  EXPECT_EQ(sp_back.instances_done, 12u);
  EXPECT_EQ(sp_back.units_total, 8u);
}

TEST(SvcMessages, SweepDoneAndErrorRoundTrip) {
  svc::SweepDoneMsg done;
  done.sweep_id = 4;
  done.report_json = "{\n  \"bench\": \"x\"\n}\n";
  done.points_blob = "blob";
  const svc::SweepDoneMsg done_back =
      svc::SweepDoneMsg::from_frame(done.to_frame());
  EXPECT_EQ(done_back.report_json, done.report_json);
  EXPECT_EQ(done_back.points_blob, "blob");

  svc::ErrorMsg err;
  err.code = svc::ErrCode::kBadScenario;
  err.detail = "unknown key";
  const svc::ErrorMsg err_back = svc::ErrorMsg::from_frame(err.to_frame());
  EXPECT_EQ(err_back.code, svc::ErrCode::kBadScenario);
  EXPECT_EQ(err_back.detail, "unknown key");
}

TEST(SvcMessages, WrongFrameTypeIsProtocolViolation) {
  svc::HelloMsg msg;
  try {
    (void)svc::SubmitMsg::from_frame(msg.to_frame());
    FAIL() << "Hello frame decoded as Submit";
  } catch (const svc::SvcError& e) {
    EXPECT_EQ(e.code(), svc::ErrCode::kProtocolViolation);
  }
}

TEST(SvcMessages, GarbagePayloadIsBadMessage) {
  svc::Frame frame;
  frame.type = svc::MsgType::kHello;
  frame.payload = "this is not a snap codec stream";
  try {
    (void)svc::HelloMsg::from_frame(frame);
    FAIL() << "garbage payload decoded";
  } catch (const svc::SvcError& e) {
    EXPECT_EQ(e.code(), svc::ErrCode::kBadMessage);
  }
}

TEST(SvcMessages, TrailingBytesAreBadMessage) {
  svc::Frame frame = svc::HelloAckMsg{42}.to_frame();
  frame.payload += "extra";
  try {
    (void)svc::HelloAckMsg::from_frame(frame);
    FAIL() << "trailing bytes accepted";
  } catch (const svc::SvcError& e) {
    EXPECT_EQ(e.code(), svc::ErrCode::kBadMessage);
  }
}

TEST(SvcMessages, HeartbeatAndShutdownAreEmpty) {
  EXPECT_EQ(svc::make_heartbeat().type, svc::MsgType::kHeartbeat);
  EXPECT_TRUE(svc::make_heartbeat().payload.empty());
  EXPECT_EQ(svc::make_shutdown().type, svc::MsgType::kShutdown);
  EXPECT_TRUE(svc::make_shutdown().payload.empty());
}

}  // namespace
