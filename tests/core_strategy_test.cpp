#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/max_lifetime_strategy.hpp"
#include "core/min_energy_strategy.hpp"
#include "energy/radio_model.hpp"
#include "util/rng.hpp"

namespace imobif::core {
namespace {

using util::Bits;
using util::Joules;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(MinEnergyStrategy, Identity) {
  MinEnergyStrategy s;
  EXPECT_EQ(s.id(), net::StrategyId::kMinTotalEnergy);
  EXPECT_STREQ(s.name(), "min-total-energy");
}

TEST(MinEnergyStrategy, TargetIsMidpoint) {
  MinEnergyStrategy s;
  RelayContext ctx;
  ctx.prev_position = {0.0, 0.0};
  ctx.next_position = {100.0, 40.0};
  ctx.self_position = {70.0, -10.0};  // irrelevant to the midpoint rule
  EXPECT_EQ(s.next_position(ctx), (geom::Vec2{50.0, 20.0}));
}

TEST(MinEnergyStrategy, AggregateMinBitsSumResi) {
  MinEnergyStrategy s;
  net::MobilityAggregate agg;
  s.init_aggregate(agg);
  EXPECT_EQ(agg.bits_mob.value(), kInf);
  EXPECT_EQ(agg.resi_mob.value(), 0.0);

  s.aggregate(agg, LocalPerformance{Bits{100.0}, Joules{5.0}, Bits{200.0},
                                    Joules{7.0}});
  s.aggregate(agg, LocalPerformance{Bits{150.0}, Joules{3.0}, Bits{120.0},
                                    Joules{2.0}});
  EXPECT_DOUBLE_EQ(agg.bits_mob.value(), 100.0);
  EXPECT_DOUBLE_EQ(agg.resi_mob.value(), 8.0);
  EXPECT_DOUBLE_EQ(agg.bits_nomob.value(), 120.0);
  EXPECT_DOUBLE_EQ(agg.resi_nomob.value(), 9.0);
}

TEST(MinEnergyStrategy, SeedCopiesSourceValues) {
  MinEnergyStrategy s;
  net::MobilityAggregate agg;
  s.seed(agg, LocalPerformance{Bits{10.0}, Joules{1.0}, Bits{20.0},
                               Joules{2.0}});
  EXPECT_DOUBLE_EQ(agg.bits_mob.value(), 10.0);
  EXPECT_DOUBLE_EQ(agg.resi_mob.value(), 1.0);
  EXPECT_DOUBLE_EQ(agg.bits_nomob.value(), 20.0);
  EXPECT_DOUBLE_EQ(agg.resi_nomob.value(), 2.0);
}

TEST(MaxLifetimeStrategy, RejectsBadAlphaPrime) {
  EXPECT_THROW(MaxLifetimeStrategy(0.0), std::invalid_argument);
  EXPECT_THROW(MaxLifetimeStrategy(-2.0), std::invalid_argument);
}

TEST(MaxLifetimeStrategy, EqualEnergiesSplitEvenly) {
  MaxLifetimeStrategy s(2.0);
  EXPECT_DOUBLE_EQ(s.split_fraction(Joules{10.0}, Joules{10.0}), 0.5);
  RelayContext ctx;
  ctx.prev_position = {0.0, 0.0};
  ctx.next_position = {100.0, 0.0};
  ctx.prev_energy = Joules{5.0};
  ctx.self_energy = Joules{5.0};
  EXPECT_EQ(s.next_position(ctx), (geom::Vec2{50.0, 0.0}));
}

TEST(MaxLifetimeStrategy, RicherPrevTakesLongerHop) {
  MaxLifetimeStrategy s(2.0);
  RelayContext ctx;
  ctx.prev_position = {0.0, 0.0};
  ctx.next_position = {100.0, 0.0};
  ctx.prev_energy = Joules{40.0};
  ctx.self_energy = Joules{10.0};
  // rho = (40/10)^(1/2) = 2; frac = 2/3: we park 2/3 of the way toward
  // next, giving the richer upstream node the longer (2/3) hop.
  const geom::Vec2 target = s.next_position(ctx);
  EXPECT_NEAR(target.x, 100.0 * 2.0 / 3.0, 1e-9);
}

TEST(MaxLifetimeStrategy, SplitFractionMonotoneInPrevEnergy) {
  MaxLifetimeStrategy s(2.0);
  double prev_frac = 0.0;
  for (double e_prev = 1.0; e_prev <= 100.0; e_prev += 5.0) {
    const double frac = s.split_fraction(Joules{e_prev}, Joules{10.0});
    EXPECT_GT(frac, prev_frac);
    prev_frac = frac;
  }
}

TEST(MaxLifetimeStrategy, SplitFractionBounded) {
  MaxLifetimeStrategy s(2.0);
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double f = s.split_fraction(Joules{rng.uniform(0.0, 100.0)},
                                      Joules{rng.uniform(0.0, 100.0)});
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(MaxLifetimeStrategy, DegenerateEnergiesClamped) {
  MaxLifetimeStrategy s(2.0);
  EXPECT_DOUBLE_EQ(s.split_fraction(Joules{0.0}, Joules{0.0}), 0.5);
  EXPECT_NEAR(s.split_fraction(Joules{0.0}, Joules{10.0}), 0.0, 1e-3);
  EXPECT_NEAR(s.split_fraction(Joules{10.0}, Joules{0.0}), 1.0, 1e-3);
}

// Theorem 1 approximation: with P(d) = b d^alpha (a = 0) and alpha' =
// alpha, the resulting hop split satisfies P(d_prev)/P(d_self) =
// e_prev/e_self exactly.
class LifetimeTheorem : public ::testing::TestWithParam<double> {};

TEST_P(LifetimeTheorem, PowerRatioMatchesEnergyRatio) {
  const double alpha = GetParam();
  MaxLifetimeStrategy s(alpha);
  energy::RadioParams rp;
  rp.a = 0.0;
  rp.b = 1e-10;
  rp.alpha = alpha;
  const energy::RadioEnergyModel radio(rp);

  util::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    RelayContext ctx;
    ctx.prev_position = {0.0, 0.0};
    ctx.next_position = {rng.uniform(50.0, 300.0), 0.0};
    ctx.prev_energy = Joules{rng.uniform(1.0, 100.0)};
    ctx.self_energy = Joules{rng.uniform(1.0, 100.0)};
    const geom::Vec2 x = s.next_position(ctx);
    const util::Meters d_prev{geom::distance(ctx.prev_position, x)};
    const util::Meters d_self{geom::distance(x, ctx.next_position)};
    const double power_ratio =
        radio.power_per_bit(d_prev) / radio.power_per_bit(d_self);
    EXPECT_NEAR(power_ratio, ctx.prev_energy / ctx.self_energy,
                1e-6 * ctx.prev_energy / ctx.self_energy);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, LifetimeTheorem,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0));

TEST(MaxLifetimeStrategy, AggregateBothMin) {
  MaxLifetimeStrategy s(2.0);
  net::MobilityAggregate agg;
  s.init_aggregate(agg);
  EXPECT_EQ(agg.resi_mob.value(), kInf);
  s.aggregate(agg, LocalPerformance{Bits{100.0}, Joules{5.0}, Bits{200.0},
                                    Joules{7.0}});
  s.aggregate(agg, LocalPerformance{Bits{150.0}, Joules{3.0}, Bits{120.0},
                                    Joules{9.0}});
  EXPECT_DOUBLE_EQ(agg.bits_mob.value(), 100.0);
  EXPECT_DOUBLE_EQ(agg.resi_mob.value(), 3.0);   // min, not sum
  EXPECT_DOUBLE_EQ(agg.bits_nomob.value(), 120.0);
  EXPECT_DOUBLE_EQ(agg.resi_nomob.value(), 7.0);
}

TEST(MaxLifetimeStrategy, AlphaPrimeShapesSplit) {
  // Larger alpha' flattens the split toward 1/2 for the same energy ratio.
  MaxLifetimeStrategy sharp(1.0), flat(4.0);
  const double fs = sharp.split_fraction(Joules{40.0}, Joules{10.0});
  const double ff = flat.split_fraction(Joules{40.0}, Joules{10.0});
  EXPECT_GT(fs, ff);
  EXPECT_GT(ff, 0.5);
}

TEST(MaxLifetimeStrategy, TargetOnPrevNextSegment) {
  MaxLifetimeStrategy s(2.0);
  util::Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    RelayContext ctx;
    ctx.prev_position = {rng.uniform(-100, 100), rng.uniform(-100, 100)};
    ctx.next_position = {rng.uniform(-100, 100), rng.uniform(-100, 100)};
    ctx.prev_energy = Joules{rng.uniform(0.1, 50.0)};
    ctx.self_energy = Joules{rng.uniform(0.1, 50.0)};
    const geom::Vec2 x = s.next_position(ctx);
    const double via = geom::distance(ctx.prev_position, x) +
                       geom::distance(x, ctx.next_position);
    EXPECT_NEAR(via, geom::distance(ctx.prev_position, ctx.next_position),
                1e-9);
  }
}

}  // namespace
}  // namespace imobif::core
