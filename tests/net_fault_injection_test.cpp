// FaultPlan / FaultInjector / Medium fault wiring (DESIGN.md §7):
// deterministic replayable drop sequences, Gilbert-Elliott burst
// statistics, crash schedules, and the disabled-plan no-op guarantee.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/fault.hpp"
#include "test_helpers.hpp"

namespace imobif::net {
namespace {

std::vector<bool> drop_sequence(FaultInjector& injector, NodeId from,
                                NodeId to, std::size_t count) {
  std::vector<bool> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(injector.should_drop(from, to));
  }
  return out;
}

FaultPlan iid_plan(double loss, std::uint64_t seed) {
  FaultPlan plan;
  plan.loss_rate = loss;
  plan.seed = seed;
  return plan;
}

TEST(FaultInjector, SameSeedSameDropSequence) {
  FaultInjector a(iid_plan(0.3, 77));
  FaultInjector b(iid_plan(0.3, 77));
  EXPECT_EQ(drop_sequence(a, 1, 2, 500), drop_sequence(b, 1, 2, 500));

  FaultInjector c(iid_plan(0.3, 78));
  EXPECT_NE(drop_sequence(a, 1, 2, 500), drop_sequence(c, 1, 2, 500));
}

// The property the sweep runtime and the "any node count" acceptance
// criterion rest on: a link's k-th decision depends only on
// (seed, link, k), so interleaving traffic from any number of other
// links/nodes never perturbs it.
TEST(FaultInjector, LinkSequenceIndependentOfOtherTraffic) {
  FaultInjector quiet(iid_plan(0.25, 9));
  const auto reference = drop_sequence(quiet, 3, 4, 200);

  FaultInjector busy(iid_plan(0.25, 9));
  std::vector<bool> interleaved;
  for (std::size_t i = 0; i < 200; ++i) {
    // A 40-node network's worth of unrelated links fire between every
    // packet of the observed link.
    for (NodeId n = 10; n < 50; ++n) busy.should_drop(n, n + 1);
    interleaved.push_back(busy.should_drop(3, 4));
  }
  EXPECT_EQ(reference, interleaved);

  // Directionality: (4, 3) is a different link with a different stream.
  FaultInjector reversed(iid_plan(0.25, 9));
  EXPECT_NE(reference, drop_sequence(reversed, 4, 3, 200));
}

TEST(FaultInjector, IidLossRateMatchesConfigured) {
  FaultInjector injector(iid_plan(0.2, 123));
  const std::size_t kN = 100000;
  std::size_t drops = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    if (injector.should_drop(0, 1)) ++drops;
  }
  const double rate = static_cast<double>(drops) / kN;
  EXPECT_NEAR(rate, 0.2, 0.01);
  EXPECT_EQ(injector.decisions(), kN);
  EXPECT_EQ(injector.drops(), drops);
}

TEST(FaultInjector, GilbertElliottMatchesChainStatistics) {
  FaultPlan plan;
  plan.gilbert_elliott = true;
  plan.p_good_to_bad = 0.05;
  plan.p_bad_to_good = 0.2;
  plan.loss_good = 0.0;
  plan.loss_bad = 1.0;
  plan.seed = 2718;
  FaultInjector injector(plan);

  // With loss_bad = 1 and loss_good = 0, drops mirror the channel state:
  // stationary bad fraction p_gb / (p_gb + p_bg) = 0.2 and mean bad-burst
  // length 1 / p_bg = 5.
  const std::size_t kN = 200000;
  std::size_t drops = 0, bursts = 0;
  bool in_burst = false;
  for (std::size_t i = 0; i < kN; ++i) {
    const bool drop = injector.should_drop(0, 1);
    if (drop) {
      ++drops;
      if (!in_burst) ++bursts;
    }
    in_burst = drop;
  }
  const double loss_fraction = static_cast<double>(drops) / kN;
  const double mean_burst = static_cast<double>(drops) / bursts;
  EXPECT_NEAR(loss_fraction, 0.2, 0.01);
  EXPECT_NEAR(mean_burst, 5.0, 0.25);
}

TEST(FaultInjector, GilbertElliottBurstsAreClustered) {
  // Same stationary loss as iid 0.2, but conditional loss after a loss
  // must be far higher than the marginal (that is what "bursty" means).
  FaultPlan plan;
  plan.gilbert_elliott = true;
  plan.p_good_to_bad = 0.05;
  plan.p_bad_to_good = 0.2;
  plan.seed = 31415;
  FaultInjector injector(plan);

  const std::size_t kN = 200000;
  std::size_t drops = 0, pairs = 0;
  bool prev = false;
  for (std::size_t i = 0; i < kN; ++i) {
    const bool drop = injector.should_drop(0, 1);
    if (drop) {
      ++drops;
      if (prev) ++pairs;
    }
    prev = drop;
  }
  const double marginal = static_cast<double>(drops) / kN;
  const double conditional = static_cast<double>(pairs) / drops;
  // P(drop | previous drop) = 1 - p_bad_to_good = 0.8 >> 0.2.
  EXPECT_NEAR(conditional, 0.8, 0.02);
  EXPECT_GT(conditional, 2.0 * marginal);
}

TEST(FaultPlan, ValidateRejectsBadParameters) {
  FaultPlan plan;
  plan.loss_rate = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = {};
  plan.gilbert_elliott = true;
  plan.p_bad_to_good = 0.0;  // bad state would be absorbing
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = {};
  plan.gilbert_elliott = true;
  plan.p_good_to_bad = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = {};
  plan.crashes.push_back({kInvalidNode, 1.0, -1.0});
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = {};
  plan.crashes.push_back({0, -1.0, -1.0});
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = {};
  plan.loss_rate = 0.5;
  plan.crashes.push_back({3, 10.0, 5.0});
  EXPECT_NO_THROW(plan.validate());
}

TEST(MediumFaults, DisabledPlanIsANoOp) {
  auto h = test::make_harness(test::line_positions(3, 200.0));
  h.net().medium().install_fault_plan(FaultPlan{});
  EXPECT_EQ(h.net().medium().fault_injector(), nullptr);
  h.net().warmup(util::Seconds{30.0});
  EXPECT_EQ(h.net().medium().counters().dropped_injected, 0u);
  EXPECT_EQ(h.net().medium().counters().dropped_faulted, 0u);
  EXPECT_GT(h.net().medium().counters().delivered, 0u);
}

TEST(MediumFaults, InjectedLossIsSilentAndCounted) {
  auto h = test::make_harness(test::line_positions(2, 100.0));
  FaultPlan plan;
  plan.loss_rate = 1.0 - 1e-12;  // drop (essentially) everything
  plan.seed = 4;
  h.net().medium().install_fault_plan(plan);

  Packet pkt;
  pkt.type = PacketType::kHello;
  pkt.sender.id = 0;
  pkt.link_dest = 1;
  // Silent loss: the channel accepts the frame but never delivers it.
  EXPECT_TRUE(h.net().medium().unicast(h.net().node(0), 1, pkt));
  EXPECT_EQ(h.net().medium().counters().dropped_injected, 1u);
  EXPECT_EQ(h.net().medium().counters().delivered, 0u);
}

TEST(MediumFaults, CrashWindowDropsThenResumes) {
  auto h = test::make_harness(test::line_positions(3, 200.0));
  FaultPlan plan;
  plan.crashes.push_back({1, 5.0, 20.0});  // node 1 down on [5 s, 25 s)
  h.net().medium().install_fault_plan(plan);
  // No loss model -> no injector, but the crash schedule still runs.
  EXPECT_EQ(h.net().medium().fault_injector(), nullptr);

  auto& sim = h.net().simulator();
  h.net().start_hellos();

  sim.run(sim::Time::from_seconds(4.0));
  EXPECT_FALSE(h.net().node(1).faulted());

  sim.run(sim::Time::from_seconds(10.0));
  EXPECT_TRUE(h.net().node(1).faulted());
  Packet pkt;
  pkt.type = PacketType::kHello;
  pkt.sender.id = 0;
  pkt.link_dest = 1;
  // Visible failure, unlike injected channel loss. (HELLO broadcasts into
  // the crash window count too, so compare before/after.)
  const std::uint64_t before = h.net().medium().counters().dropped_faulted;
  EXPECT_FALSE(h.net().medium().unicast(h.net().node(0), 1, pkt));
  EXPECT_EQ(h.net().medium().counters().dropped_faulted, before + 1);

  sim.run(sim::Time::from_seconds(30.0));
  EXPECT_FALSE(h.net().node(1).faulted());
  EXPECT_TRUE(h.net().node(1).alive());
  EXPECT_TRUE(h.net().medium().unicast(h.net().node(0), 1, pkt));
}

TEST(MediumFaults, PermanentCrashNeverResumes) {
  auto h = test::make_harness(test::line_positions(2, 100.0));
  FaultPlan plan;
  plan.crashes.push_back({1, 1.0, -1.0});
  h.net().medium().install_fault_plan(plan);

  auto& sim = h.net().simulator();
  sim.run(sim::Time::from_seconds(1000.0));
  EXPECT_TRUE(h.net().node(1).faulted());
  EXPECT_TRUE(h.net().node(1).alive());  // crashed, not depleted
}

}  // namespace
}  // namespace imobif::net
