// Drives the imobif_replay binary (IMOBIF_REPLAY_BIN, injected by CMake):
// finishing a checkpoint in a *fresh process* must reproduce the in-process
// result byte for byte, and the bisect/replay modes must report divergence
// through their exit codes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "energy/battery.hpp"
#include "exp/instance.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "snap/result_io.hpp"
#include "snap/snapshot.hpp"
#include "util/rng.hpp"

namespace imobif {
namespace {

exp::ScenarioParams tool_params() {
  exp::ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  // Long enough that the advance() caps below pause mid-run: the
  // checkpoints these tests exercise are genuinely mid-flight.
  p.mean_flow_bits = util::Bits{200.0 * 1024.0 * 8.0};
  p.seed = 4242;
  return p;
}

std::unique_ptr<exp::InstanceRun> make_run() {
  const exp::ScenarioParams params = tool_params();
  util::Rng rng(params.seed);
  const exp::FlowInstance instance = exp::sample_instance(params, rng);
  return exp::InstanceRun::create(instance, params,
                                  core::MobilityMode::kInformed, {});
}

std::filesystem::path scratch_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

int run_tool(const std::string& args) {
  const std::string command = std::string(IMOBIF_REPLAY_BIN) + " " + args +
                              " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

TEST(ToolsReplay, ContinueInFreshProcessMatchesInProcessResult) {
  const auto dir = scratch_dir("tools_replay_continue");
  const std::string ckpt = (dir / "mid.ckpt").string();
  const std::string out = (dir / "result.json").string();

  auto run = make_run();
  run->advance(2000);
  snap::save(*run, ckpt);

  // In-process continuation of an identical restored copy.
  auto mirror = snap::restore_file(ckpt);
  EXPECT_TRUE(mirror->advance());
  const std::string expected =
      snap::result_to_json(mirror->result()).dump(2) + "\n";

  ASSERT_EQ(run_tool("--continue " + ckpt + " --out " + out), 0);
  EXPECT_EQ(slurp(out), expected);
  std::filesystem::remove_all(dir);
}

TEST(ToolsReplay, BisectReportsIdenticalAndPerturbedCheckpoints) {
  const auto dir = scratch_dir("tools_replay_bisect");
  const std::string ckpt = (dir / "a.ckpt").string();
  const std::string twin = (dir / "b.ckpt").string();
  const std::string bad = (dir / "bad.ckpt").string();

  auto run = make_run();
  run->advance(1500);
  snap::save(*run, ckpt);
  snap::save(*run, twin);

  auto perturbed = snap::restore_file(ckpt);
  net::Node& node = perturbed->network().node(0);
  const energy::Battery& b = node.battery();
  node.battery().restore(b.initial(), b.residual() - util::Joules{1e-6},
                         b.consumed_transmit(), b.consumed_move(),
                         b.consumed_other());
  snap::save(*perturbed, bad);

  EXPECT_EQ(run_tool("--bisect " + ckpt + " " + twin), 0);
  EXPECT_EQ(run_tool("--bisect " + ckpt + " " + bad), 2);
  std::filesystem::remove_all(dir);
}

TEST(ToolsReplay, ReplayModeVerifiesCheckpointAgainstFreshRun) {
  const auto dir = scratch_dir("tools_replay_fresh");
  const std::string ckpt = (dir / "mid.ckpt").string();
  auto run = make_run();
  run->advance(1000);
  snap::save(*run, ckpt);
  // The simulator is deterministic, so a fresh replay of the embedded
  // scenario must track the checkpoint to completion: exit 0.
  EXPECT_EQ(run_tool("--replay " + ckpt), 0);
  std::filesystem::remove_all(dir);
}

TEST(ToolsReplay, UsageAndMissingFileFailures) {
  EXPECT_EQ(run_tool(""), 1);
  EXPECT_EQ(run_tool("--continue /nonexistent/x.ckpt"), 1);
}

}  // namespace
}  // namespace imobif
