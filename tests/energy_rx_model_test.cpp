// Receiver-side energy accounting (rx_per_bit extension to the paper's
// sender-pays model).
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace imobif::energy {
namespace {

using util::Bits;
using util::Joules;
using util::Seconds;

TEST(RadioRxModel, ValidationAndAccessors) {
  RadioParams p;
  p.rx_per_bit = 5e-8;
  EXPECT_NO_THROW(p.validate());
  const RadioEnergyModel m(p);
  EXPECT_DOUBLE_EQ(m.receive_energy(Bits{1000.0}).value(), 5e-5);
  EXPECT_DOUBLE_EQ(m.receive_energy(Bits{0.0}).value(), 0.0);
  EXPECT_THROW(m.receive_energy(Bits{-1.0}), std::invalid_argument);

  p.rx_per_bit = -1e-9;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(RadioRxModel, DefaultIsSenderPaysOnly) {
  const RadioEnergyModel m{RadioParams{}};
  EXPECT_DOUBLE_EQ(m.receive_energy(Bits{1e6}).value(), 0.0);
}

TEST(RadioRxModel, ReceiverChargedPerPacket) {
  imobif::net::NetworkConfig config;
  config.radio.rx_per_bit = 1e-6;
  config.node.charge_hello_energy = false;  // isolate rx accounting
  imobif::net::Network network(config);
  network.add_node({0, 0}, Joules{100.0});
  network.add_node({100, 0}, Joules{100.0});
  network.set_routing(
      std::make_unique<imobif::net::GreedyRouting>(network.medium()));
  network.warmup(Seconds{15.0});

  const Joules before = network.node(1).battery().residual();
  imobif::net::FlowSpec spec;
  spec.id = 1;
  spec.source = 0;
  spec.destination = 1;
  spec.length_bits = util::Bits{8192.0 * 2};
  network.start_flow(spec);
  network.run_flows(Seconds{30.0});

  ASSERT_TRUE(network.progress(1).completed);
  // Two data packets of 8192 bits at 1e-6 J/bit, plus the source's HELLOs
  // overheard during the run (hello energy is charged at the sender only,
  // but *receiving* hellos costs too under this model).
  const Joules drawn = before - network.node(1).battery().residual();
  EXPECT_GE(drawn.value(), 2 * 8192.0 * 1e-6 - 1e-9);
  EXPECT_DOUBLE_EQ(network.node(1).battery().consumed_transmit().value(),
                   0.0);
}

TEST(RadioRxModel, ReceiverCanDieReceiving) {
  imobif::net::NetworkConfig config;
  config.radio.rx_per_bit = 1e-3;  // receiving one packet costs 8.2 J
  imobif::net::Network network(config);
  network.add_node({0, 0}, Joules{100.0});
  network.add_node({100, 0}, Joules{4.0});  // cannot even afford one packet
  network.set_routing(
      std::make_unique<imobif::net::GreedyRouting>(network.medium()));
  network.warmup(Seconds{15.0});

  imobif::net::FlowSpec spec;
  spec.id = 1;
  spec.source = 0;
  spec.destination = 1;
  spec.length_bits = util::Bits{8192.0};
  network.start_flow(spec);
  network.run_flows(Seconds{30.0}, Seconds{10.0});

  EXPECT_FALSE(network.progress(1).completed);
  EXPECT_FALSE(network.node(1).alive());
}

}  // namespace
}  // namespace imobif::energy
