#include "core/imobif_policy.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace imobif::core {
namespace {

using test::default_flow;
using test::line_positions;
using test::make_harness;

test::Harness run_flow(MobilityMode mode, double length_bits,
                       net::StrategyId strategy =
                           net::StrategyId::kMinTotalEnergy,
                       std::vector<geom::Vec2> positions = {}) {
  if (positions.empty()) {
    // A bent path (all hops within the 180 m range): relays off the
    // source-destination line, so the min-energy strategy has something
    // to gain.
    positions = {{0, 0}, {130, 50}, {260, -50}, {390, 0}};
  }
  test::HarnessOptions opts;
  opts.mode = mode;
  auto h = make_harness(positions, opts);
  h.net().warmup(util::Seconds{25.0});
  net::FlowSpec spec = default_flow(h.net(), length_bits, strategy);
  spec.initially_enabled = (mode == MobilityMode::kCostUnaware);
  h.net().start_flow(spec);
  h.net().run_flows(
      util::Seconds{length_bits / spec.rate_bps.value() * 4.0 + 120.0});
  return h;
}

TEST(PolicyModes, ToStringRoundTrip) {
  EXPECT_STREQ(to_string(MobilityMode::kNoMobility), "no-mobility");
  EXPECT_STREQ(to_string(MobilityMode::kCostUnaware), "cost-unaware");
  EXPECT_STREQ(to_string(MobilityMode::kInformed), "informed");
  EXPECT_STREQ(to_string(BenefitEstimator::kPaperLocal), "paper-local");
  EXPECT_STREQ(to_string(BenefitEstimator::kHopReceiver), "hop-receiver");
}

TEST(ImobifPolicy, RejectsNullStrategy) {
  auto h = make_harness({{0, 0}, {100, 0}});
  EXPECT_THROW(h.policy->register_strategy(nullptr), std::invalid_argument);
}

TEST(ImobifPolicy, DefaultPolicyHasBothStrategies) {
  auto h = make_harness({{0, 0}, {100, 0}});
  EXPECT_NE(h.policy->strategy(net::StrategyId::kMinTotalEnergy), nullptr);
  EXPECT_NE(h.policy->strategy(net::StrategyId::kMaxLifetime), nullptr);
  EXPECT_EQ(h.policy->strategy(net::StrategyId::kNone), nullptr);
}

TEST(ImobifPolicy, AlphaPrimeDefaultsToRadioAlpha) {
  auto h = make_harness({{0, 0}, {100, 0}});
  const auto* strat = dynamic_cast<const MaxLifetimeStrategy*>(
      h.policy->strategy(net::StrategyId::kMaxLifetime));
  ASSERT_NE(strat, nullptr);
  EXPECT_DOUBLE_EQ(strat->alpha_prime(), 2.0);
}

TEST(PolicyModes, NoMobilityNeverMoves) {
  auto h = run_flow(MobilityMode::kNoMobility, 8192.0 * 200);
  EXPECT_EQ(h.policy->movements_applied(), 0u);
  EXPECT_DOUBLE_EQ(h.net().total_movement_energy().value(), 0.0);
  EXPECT_TRUE(h.net().progress(1).completed);
}

TEST(PolicyModes, CostUnawareAlwaysMoves) {
  auto h = run_flow(MobilityMode::kCostUnaware, 8192.0 * 200);
  EXPECT_GT(h.policy->movements_applied(), 0u);
  EXPECT_GT(h.net().total_movement_energy(), util::Joules{0.0});
  // No cost/benefit evaluation: the destination never sends notifications.
  EXPECT_EQ(h.net().progress(1).notifications_from_dest, 0u);
}

TEST(PolicyModes, CostUnawareMovesEvenForTinyFlows) {
  auto h = run_flow(MobilityMode::kCostUnaware, 8192.0 * 4);
  EXPECT_GT(h.policy->movements_applied(), 0u);
}

TEST(PolicyModes, InformedStaysPutForTinyFlows) {
  // For a 4-packet flow the movement cost dwarfs any transmission saving;
  // the informed framework must keep mobility disabled.
  auto h = run_flow(MobilityMode::kInformed, 8192.0 * 4);
  EXPECT_EQ(h.policy->movements_applied(), 0u);
  EXPECT_TRUE(h.net().progress(1).completed);
}

TEST(PolicyModes, InformedEnablesForLongFlowsOnBentPath) {
  // A long flow across visibly bent relays: straightening pays, and the
  // destination must have told the source to enable mobility.
  auto h = run_flow(MobilityMode::kInformed, 8192.0 * 4000);
  EXPECT_GT(h.policy->movements_applied(), 0u);
  EXPECT_GE(h.net().progress(1).notifications_at_source, 1u);
}

TEST(PolicyModes, InformedNeverWorseThanBaselineOnShortFlows) {
  auto base = run_flow(MobilityMode::kNoMobility, 8192.0 * 4);
  auto inf = run_flow(MobilityMode::kInformed, 8192.0 * 4);
  EXPECT_NEAR(inf.net().total_consumed_energy().value(),
              base.net().total_consumed_energy().value(),
              base.net().total_consumed_energy().value() * 0.01);
}

TEST(PolicyModes, InformedBeatsBaselineOnLongBentFlows) {
  auto base = run_flow(MobilityMode::kNoMobility, 8192.0 * 4000);
  auto inf = run_flow(MobilityMode::kInformed, 8192.0 * 4000);
  EXPECT_LT(inf.net().total_consumed_energy(),
            base.net().total_consumed_energy());
}

TEST(PolicyModes, RelaysAdoptCarriedStatus) {
  auto h = run_flow(MobilityMode::kCostUnaware, 8192.0 * 20);
  const net::FlowEntry* relay = h.net().node(1).flows().find(1);
  ASSERT_NE(relay, nullptr);
  EXPECT_TRUE(relay->mobility_enabled);

  auto h2 = run_flow(MobilityMode::kNoMobility, 8192.0 * 20);
  const net::FlowEntry* relay2 = h2.net().node(1).flows().find(1);
  ASSERT_NE(relay2, nullptr);
  EXPECT_FALSE(relay2->mobility_enabled);
}

TEST(PolicyModes, MovementDistanceTracked) {
  auto h = run_flow(MobilityMode::kCostUnaware, 8192.0 * 100);
  EXPECT_GT(h.policy->total_distance_moved(), util::Meters{0.0});
  double node_sum = 0.0;
  for (std::size_t i = 0; i < h.net().node_count(); ++i) {
    node_sum +=
        h.net().node(static_cast<net::NodeId>(i)).total_moved().value();
  }
  EXPECT_NEAR(h.policy->total_distance_moved().value(), node_sum, 1e-9);
}

TEST(PolicyModes, PaperLocalEstimatorStillRuns) {
  std::vector<geom::Vec2> positions{{0, 0}, {130, 50}, {260, -50}, {390, 0}};
  test::HarnessOptions opts;
  opts.mode = MobilityMode::kInformed;
  auto h = make_harness(positions, opts);
  h.policy->set_estimator(BenefitEstimator::kPaperLocal);
  h.net().warmup(util::Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 50));
  h.net().run_flows(util::Seconds{400.0});
  EXPECT_TRUE(h.net().progress(1).completed);
}

TEST(PolicyModes, EvaluateAtDestinationDecisions) {
  auto h = make_harness({{0, 0}, {100, 0}});
  net::FlowEntry entry;
  entry.prev = 0;
  net::DataBody data;
  data.strategy = net::StrategyId::kMinTotalEnergy;
  data.sender_has_plan = true;
  data.sender_target = h.net().node(0).position();
  data.sender_move_cost = util::Joules{0.0};
  data.residual_flow_bits = util::Bits{1000.0};

  // Force the aggregate so the final-hop fold cannot flip the comparison:
  // mobility hugely better -> enable request when disabled.
  h.policy->strategy(net::StrategyId::kMinTotalEnergy);
  data.agg = {util::Bits{1e12}, util::Joules{1e12}, util::Bits{1.0},
              util::Joules{1.0}};
  data.mobility_enabled = false;
  auto decision =
      h.policy->evaluate_at_destination(h.net().node(1), data, entry);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(*decision);

  // Already enabled: no change requested.
  data.mobility_enabled = true;
  EXPECT_FALSE(h.policy->evaluate_at_destination(h.net().node(1), data, entry)
                   .has_value());

  // Mobility hugely worse -> disable request when enabled.
  data.agg = {util::Bits{1.0}, util::Joules{1.0}, util::Bits{1e12},
              util::Joules{1e12}};
  decision = h.policy->evaluate_at_destination(h.net().node(1), data, entry);
  ASSERT_TRUE(decision.has_value());
  EXPECT_FALSE(*decision);
}

TEST(PolicyModes, NonInformedNeverNotifies) {
  auto h = make_harness({{0, 0}, {100, 0}},
                        {.mode = MobilityMode::kCostUnaware});
  net::FlowEntry entry;
  entry.prev = 0;
  net::DataBody data;
  data.strategy = net::StrategyId::kMinTotalEnergy;
  data.agg = {util::Bits{1e12}, util::Joules{1e12}, util::Bits{1.0},
              util::Joules{1.0}};
  EXPECT_FALSE(h.policy->evaluate_at_destination(h.net().node(1), data, entry)
                   .has_value());
}

}  // namespace
}  // namespace imobif::core
