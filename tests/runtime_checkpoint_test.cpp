// Crash-resumable sweeps: a checkpointed sweep's outcomes are
// bit-identical to an uncheckpointed one, --resume short-circuits from
// .result files, picks a mid-flight .ckpt back up exactly, and the whole
// contract holds at any worker count.
#include "runtime/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "exp/instance.hpp"
#include "runtime/sweep.hpp"
#include "snap/result_io.hpp"
#include "snap/snapshot.hpp"
#include "util/rng.hpp"

namespace imobif::runtime {
namespace {

exp::ScenarioParams sweep_params(std::uint64_t seed) {
  exp::ScenarioParams p;
  p.node_count = 60;
  p.area_m = util::Meters{800.0};
  p.mean_flow_bits = util::Bits{40.0 * 1024.0 * 8.0};
  p.seed = seed;
  return p;
}

std::string json(const exp::RunResult& result) {
  return snap::result_to_json(result).dump(2);
}

/// Fresh scratch directory under the test temp root.
std::filesystem::path scratch_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(RuntimeCheckpoint, CheckpointedSweepMatchesPlainSweep) {
  std::vector<SweepJob> jobs;
  for (std::uint64_t s : {11u, 12u, 13u}) {
    SweepJob job;
    job.params = sweep_params(s);
    jobs.push_back(job);
  }

  const SweepEngine engine(2);
  const std::vector<SweepOutcome> plain = engine.run(jobs, 5);

  const auto dir = scratch_dir("rt_ckpt_plain");
  CheckpointOptions checkpoint;
  checkpoint.dir = dir.string();
  checkpoint.every_sim_s = 15.0;
  const std::vector<SweepOutcome> checked = engine.run(jobs, 5, checkpoint);

  ASSERT_EQ(plain.size(), checked.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].seed, checked[i].seed);
    EXPECT_EQ(json(plain[i].result), json(checked[i].result));
    EXPECT_TRUE(std::filesystem::exists(
        dir / ("job-" + std::to_string(i) + ".result")));
    // Finished units keep only their .result.
    EXPECT_FALSE(std::filesystem::exists(
        dir / ("job-" + std::to_string(i) + ".ckpt")));
  }
  std::filesystem::remove_all(dir);
}

TEST(RuntimeCheckpoint, ResumeShortCircuitsFromResultFiles) {
  std::vector<SweepJob> jobs(2);
  jobs[0].params = sweep_params(21);
  jobs[1].params = sweep_params(22);

  const auto dir = scratch_dir("rt_ckpt_resume");
  CheckpointOptions checkpoint;
  checkpoint.dir = dir.string();
  const SweepEngine engine(1);
  const std::vector<SweepOutcome> first = engine.run(jobs, 9, checkpoint);

  checkpoint.resume = true;
  const std::vector<SweepOutcome> second = engine.run(jobs, 9, checkpoint);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(json(first[i].result), json(second[i].result));
  }
  std::filesystem::remove_all(dir);
}

TEST(RuntimeCheckpoint, ResumePicksUpMidFlightCheckpoint) {
  SweepJob job;
  job.params = sweep_params(31);
  const std::vector<SweepJob> jobs{job};
  const SweepEngine engine(1);
  const std::vector<SweepOutcome> reference = engine.run(jobs, 4);

  // Simulate a kill: run job 0 partway by hand and leave only its .ckpt
  // behind, exactly as a SIGKILLed sweep would.
  const auto dir = scratch_dir("rt_ckpt_kill");
  {
    const std::uint64_t seed = derive_seed(4, 0);
    util::Rng rng(seed);
    const exp::FlowInstance instance = exp::sample_instance(job.params, rng);
    auto run = exp::InstanceRun::create(instance, job.params, job.mode,
                                        job.options);
    run->set_sampler_rng_state(rng.state());
    run->advance(1200);
    ASSERT_FALSE(run->done());
    snap::save(*run, (dir / "job-0.ckpt").string());
  }

  CheckpointOptions checkpoint;
  checkpoint.dir = dir.string();
  checkpoint.resume = true;
  const std::vector<SweepOutcome> resumed = engine.run(jobs, 4, checkpoint);
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(json(resumed[0].result), json(reference[0].result));
  EXPECT_EQ(resumed[0].seed, reference[0].seed);
  std::filesystem::remove_all(dir);
}

TEST(RuntimeCheckpoint, ComparisonSweepResumesIdenticallyAtAnyWorkerCount) {
  const exp::ScenarioParams params = sweep_params(41);
  const std::vector<exp::ComparisonPoint> reference =
      run_comparison_parallel(params, 2);

  const auto dir = scratch_dir("rt_ckpt_cmp");
  CheckpointOptions checkpoint;
  checkpoint.dir = dir.string();
  const std::vector<exp::ComparisonPoint> first =
      run_comparison_parallel(params, 2, {}, 1, checkpoint);
  // Per-unit files use the cmp-<i>-<mode> naming.
  EXPECT_TRUE(std::filesystem::exists(dir / "cmp-0-baseline.result"));
  EXPECT_TRUE(std::filesystem::exists(dir / "cmp-1-informed.result"));

  checkpoint.resume = true;
  const std::vector<exp::ComparisonPoint> resumed =
      run_comparison_parallel(params, 2, {}, 4, checkpoint);

  ASSERT_EQ(reference.size(), resumed.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(json(reference[i].baseline), json(first[i].baseline));
    EXPECT_EQ(json(reference[i].baseline), json(resumed[i].baseline));
    EXPECT_EQ(json(reference[i].cost_unaware), json(resumed[i].cost_unaware));
    EXPECT_EQ(json(reference[i].informed), json(resumed[i].informed));
  }
  std::filesystem::remove_all(dir);
}

TEST(RuntimeCheckpoint, ScopeSeparatesSweepsSharingADirectory) {
  // A process running several sweeps against one directory (bench panels)
  // must namespace them: without distinct scopes, the second sweep's
  // cmp-0-* units resolve to the first sweep's files and a resume returns
  // the wrong results.
  const exp::ScenarioParams first = sweep_params(51);
  exp::ScenarioParams second = sweep_params(52);
  second.mean_flow_bits *= 4.0;

  const std::vector<exp::ComparisonPoint> ref_first =
      run_comparison_parallel(first, 1);
  const std::vector<exp::ComparisonPoint> ref_second =
      run_comparison_parallel(second, 1);

  const auto dir = scratch_dir("rt_ckpt_scope");
  CheckpointOptions checkpoint;
  checkpoint.dir = dir.string();
  checkpoint.scope = "s0-";
  (void)run_comparison_parallel(first, 1, {}, 1, checkpoint);
  EXPECT_TRUE(std::filesystem::exists(dir / "s0-cmp-0-baseline.result"));

  // The second sweep resumes against the same directory under its own
  // scope: nothing matches, so it runs fresh and stays correct.
  checkpoint.scope = "s1-";
  checkpoint.resume = true;
  const std::vector<exp::ComparisonPoint> resumed_second =
      run_comparison_parallel(second, 1, {}, 1, checkpoint);
  ASSERT_EQ(resumed_second.size(), ref_second.size());
  EXPECT_EQ(json(resumed_second[0].informed), json(ref_second[0].informed));
  EXPECT_NE(json(ref_first[0].informed), json(ref_second[0].informed));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace imobif::runtime
