#include "net/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace imobif::net {
namespace {

TEST(GridIndex, RejectsBadCellSize) {
  EXPECT_THROW(GridIndex(0.0), std::invalid_argument);
  EXPECT_THROW(GridIndex(-1.0), std::invalid_argument);
}

TEST(GridIndex, InsertAndQuery) {
  GridIndex index(100.0);
  index.insert(1, {10.0, 10.0});
  index.insert(2, {50.0, 10.0});
  index.insert(3, {500.0, 500.0});
  const auto hits = index.query({0.0, 0.0}, 80.0);
  const std::set<GridIndex::Id> ids(hits.begin(), hits.end());
  EXPECT_EQ(ids, (std::set<GridIndex::Id>{1, 2}));
}

TEST(GridIndex, DuplicateInsertThrows) {
  GridIndex index(100.0);
  index.insert(1, {0.0, 0.0});
  EXPECT_THROW(index.insert(1, {1.0, 1.0}), std::invalid_argument);
}

TEST(GridIndex, RadiusIsInclusive) {
  GridIndex index(100.0);
  index.insert(1, {100.0, 0.0});
  EXPECT_EQ(index.query({0.0, 0.0}, 100.0).size(), 1u);
  EXPECT_EQ(index.query({0.0, 0.0}, 99.999).size(), 0u);
}

TEST(GridIndex, UpdateMovesAcrossCells) {
  GridIndex index(100.0);
  index.insert(7, {10.0, 10.0});
  index.update(7, {950.0, 950.0});
  EXPECT_TRUE(index.query({0.0, 0.0}, 50.0).empty());
  const auto hits = index.query({940.0, 940.0}, 50.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
}

TEST(GridIndex, UpdateWithinCellKeepsEntry) {
  GridIndex index(100.0);
  index.insert(7, {10.0, 10.0});
  index.update(7, {20.0, 15.0});
  const auto hits = index.query({20.0, 15.0}, 1.0);
  ASSERT_EQ(hits.size(), 1u);
}

TEST(GridIndex, UpdateUnknownThrows) {
  GridIndex index(100.0);
  EXPECT_THROW(index.update(5, {0.0, 0.0}), std::out_of_range);
}

TEST(GridIndex, RemoveIsIdempotent) {
  GridIndex index(100.0);
  index.insert(3, {0.0, 0.0});
  index.remove(3);
  EXPECT_FALSE(index.contains(3));
  EXPECT_EQ(index.size(), 0u);
  index.remove(3);  // no-op
  EXPECT_TRUE(index.query({0.0, 0.0}, 100.0).empty());
}

TEST(GridIndex, NegativeCoordinatesWork) {
  GridIndex index(100.0);
  index.insert(1, {-350.0, -220.0});
  const auto hits = index.query({-340.0, -210.0}, 20.0);
  ASSERT_EQ(hits.size(), 1u);
}

TEST(GridIndex, LargerRadiusThanCellWidens) {
  GridIndex index(50.0);
  index.insert(1, {180.0, 0.0});
  const auto hits = index.query({0.0, 0.0}, 200.0);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(GridIndexNearest, EmptyGridReturnsNullopt) {
  GridIndex index(100.0);
  EXPECT_FALSE(index.nearest({0.0, 0.0}, 1000.0).has_value());
  // Zero radius on an empty grid must not scan anything either.
  EXPECT_FALSE(index.nearest({0.0, 0.0}, 0.0).has_value());
}

TEST(GridIndexNearest, SingleOccupiedCellAtQueryOrigin) {
  GridIndex index(100.0);
  index.insert(9, {10.0, 20.0});
  const auto hit = index.nearest({10.0, 20.0}, 100.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 9u);
  EXPECT_EQ(hit->distance_sq, 0.0);
  EXPECT_EQ(hit->position.x, 10.0);
  EXPECT_EQ(hit->position.y, 20.0);
}

TEST(GridIndexNearest, HitExactlyOnRingExpansionOuterBoundary) {
  // The only node sits at distance == max_radius, two full cell rings
  // out: the search must expand past the empty inner rings and the
  // inclusive radius must keep the boundary hit.
  GridIndex index(100.0);
  index.insert(4, {200.0, 0.0});
  const auto hit = index.nearest({0.0, 0.0}, 200.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 4u);
  EXPECT_EQ(hit->distance_sq, 200.0 * 200.0);
  // Just inside the boundary the same node is out of range.
  EXPECT_FALSE(index.nearest({0.0, 0.0}, 199.999).has_value());
}

TEST(GridIndexNearest, CloserNodeInOuterRingBeatsRingZeroHit) {
  // The ring-floor early exit must not stop before a geometrically
  // closer node one ring further out: a corner hit in the center cell is
  // ~141 away, the ring-1 node only ~100.
  GridIndex index(100.0);
  index.insert(1, {99.0, 99.0});    // center cell, far corner
  index.insert(2, {100.5, 0.0});    // ring 1, much closer
  const auto hit = index.nearest({0.0, 0.0}, 500.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 2u);
}

TEST(GridIndexNearest, EqualDistanceBreaksToLowestId) {
  GridIndex index(100.0);
  index.insert(8, {50.0, 0.0});
  index.insert(3, {-50.0, 0.0});
  const auto hit = index.nearest({0.0, 0.0}, 100.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 3u);
}

// Property: query() agrees with brute force over random insert / move /
// remove workloads.
TEST(GridIndexProperty, MatchesBruteForce) {
  util::Rng rng(99);
  GridIndex index(180.0);
  std::unordered_map<GridIndex::Id, geom::Vec2> truth;

  for (GridIndex::Id id = 0; id < 200; ++id) {
    const geom::Vec2 p{rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)};
    index.insert(id, p);
    truth[id] = p;
  }
  for (int step = 0; step < 500; ++step) {
    const auto op = rng.uniform_int(0, 2);
    const auto id = static_cast<GridIndex::Id>(rng.uniform_int(0, 199));
    if (op == 0 && truth.count(id)) {
      const geom::Vec2 p{rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)};
      index.update(id, p);
      truth[id] = p;
    } else if (op == 1 && truth.count(id)) {
      index.remove(id);
      truth.erase(id);
    } else {
      const geom::Vec2 center{rng.uniform(-1000, 1000),
                              rng.uniform(-1000, 1000)};
      const double radius = rng.uniform(10.0, 400.0);
      auto hits = index.query(center, radius);
      std::sort(hits.begin(), hits.end());
      std::vector<GridIndex::Id> expected;
      for (const auto& [tid, pos] : truth) {
        if (geom::distance(pos, center) <= radius) expected.push_back(tid);
      }
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(hits, expected) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace imobif::net
