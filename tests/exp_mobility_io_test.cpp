// Scenario-config binding for the mobility & traffic model zoo
// (DESIGN.md §14): every new key round trips, and — the byte-identity
// contract — a default scenario emits no mobility/traffic keys at all, so
// legacy configs, svc checkpoint scopes, and committed figures keep their
// exact bytes.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "exp/scenario_io.hpp"
#include "mob/params.hpp"
#include "traffic/params.hpp"

namespace imobif::exp {
namespace {

using util::Seconds;

TEST(MobilityIo, DefaultDumpCarriesNoZooKeys) {
  const std::string text = to_config_string(ScenarioParams{});
  EXPECT_EQ(text.find("mobility.model"), std::string::npos);
  EXPECT_EQ(text.find("traffic."), std::string::npos);
  // "mobility." must not appear either (k/max_step_m are bare keys).
  EXPECT_EQ(text.find("mobility."), std::string::npos);
}

TEST(MobilityIo, LegacyConfigTextParsesIdentically) {
  // The seed repo's scenario grammar: a config written before the model
  // zoo existed must produce the same params — and re-emit the same
  // bytes — as it always did.
  ScenarioParams p;
  p.seed = 4242;
  p.mobility.k = 0.25;
  const std::string legacy = to_config_string(p);

  ScenarioParams q;
  apply_config(util::Config::from_string(legacy), q);
  EXPECT_FALSE(q.mob.enabled());
  EXPECT_FALSE(q.traffic.enabled());
  EXPECT_EQ(to_config_string(q), legacy);
}

TEST(MobilityIo, EveryMobilityKeyRoundTrips) {
  ScenarioParams p;
  p.mob.model = mob::ModelId::kGaussMarkov;
  p.mob.update_s = Seconds{0.25};
  p.mob.speed_min = util::MetersPerSecond{0.125};
  p.mob.speed_max = util::MetersPerSecond{3.75};
  p.mob.pause_s = Seconds{7.5};
  p.mob.gm_alpha = 0.875;
  p.mob.gm_speed_sigma = util::MetersPerSecond{0.0625};
  p.mob.gm_dir_sigma_rad = 0.375;
  p.mob.group_count = 7;
  p.mob.group_radius_m = util::Meters{33.5};
  p.mob.charge_energy = true;

  ScenarioParams q;  // starts at defaults
  apply_config(util::Config::from_string(to_config_string(p)), q);

  EXPECT_EQ(q.mob.model, mob::ModelId::kGaussMarkov);
  EXPECT_DOUBLE_EQ(q.mob.update_s.value(), 0.25);
  EXPECT_DOUBLE_EQ(q.mob.speed_min.value(), 0.125);
  EXPECT_DOUBLE_EQ(q.mob.speed_max.value(), 3.75);
  EXPECT_DOUBLE_EQ(q.mob.pause_s.value(), 7.5);
  EXPECT_DOUBLE_EQ(q.mob.gm_alpha, 0.875);
  EXPECT_DOUBLE_EQ(q.mob.gm_speed_sigma.value(), 0.0625);
  EXPECT_DOUBLE_EQ(q.mob.gm_dir_sigma_rad, 0.375);
  EXPECT_EQ(q.mob.group_count, 7u);
  EXPECT_DOUBLE_EQ(q.mob.group_radius_m.value(), 33.5);
  EXPECT_TRUE(q.mob.charge_energy);

  // Snapshot embedding relies on generation stability: a second dump is
  // byte-identical to the first.
  EXPECT_EQ(to_config_string(q), to_config_string(p));
}

TEST(MobilityIo, TraceFileRoundTrips) {
  ScenarioParams p;
  p.mob.model = mob::ModelId::kTrace;
  p.mob.trace_file = "/tmp/imobif_io_test.trace";

  ScenarioParams q;
  apply_config(util::Config::from_string(to_config_string(p)), q);
  EXPECT_EQ(q.mob.model, mob::ModelId::kTrace);
  EXPECT_EQ(q.mob.trace_file, p.mob.trace_file);
  EXPECT_EQ(to_config_string(q), to_config_string(p));
}

TEST(MobilityIo, EveryTrafficKeyRoundTrips) {
  ScenarioParams p;
  p.traffic.model = traffic::ModelId::kPareto;
  p.traffic.on_mean_s = Seconds{2.5};
  p.traffic.off_mean_s = Seconds{12.25};
  p.traffic.pareto_shape = 1.625;

  ScenarioParams q;
  apply_config(util::Config::from_string(to_config_string(p)), q);
  EXPECT_EQ(q.traffic.model, traffic::ModelId::kPareto);
  EXPECT_DOUBLE_EQ(q.traffic.on_mean_s.value(), 2.5);
  EXPECT_DOUBLE_EQ(q.traffic.off_mean_s.value(), 12.25);
  EXPECT_DOUBLE_EQ(q.traffic.pareto_shape, 1.625);
  EXPECT_EQ(to_config_string(q), to_config_string(p));
}

TEST(MobilityIo, ModelNamesBindThroughConfig) {
  ScenarioParams p;
  apply_config(util::Config::from_string("mobility.model = rwp\n"
                                         "traffic.model = on-off\n"),
               p);
  EXPECT_EQ(p.mob.model, mob::ModelId::kRandomWaypoint);
  EXPECT_EQ(p.traffic.model, traffic::ModelId::kOnOff);

  ScenarioParams q;
  EXPECT_THROW(
      apply_config(util::Config::from_string("mobility.model = warp\n"), q),
      std::invalid_argument);
  EXPECT_THROW(
      apply_config(util::Config::from_string("traffic.model = hose\n"), q),
      std::invalid_argument);
}

TEST(MobilityIo, AbsentZooKeysKeepDefaults) {
  ScenarioParams p;
  apply_config(util::Config::from_string("seed = 9\n"), p);
  EXPECT_EQ(p.mob.model, mob::ModelId::kNone);
  EXPECT_EQ(p.traffic.model, traffic::ModelId::kCbr);
  EXPECT_TRUE(p.mob.trace_file.empty());
}

}  // namespace
}  // namespace imobif::exp
