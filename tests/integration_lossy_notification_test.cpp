// Notification reliability under injected channel loss (DESIGN.md §7):
// the destination's retransmission loop must push status changes through
// a lossy channel, energy accounting must include the retransmissions,
// the source must reject stale decisions, and at zero loss the whole
// reliability layer must be an exact no-op (bit-identical results).
#include <gtest/gtest.h>

#include "exp/trace.hpp"
#include "net/fault.hpp"
#include "runtime/sweep.hpp"
#include "test_helpers.hpp"

namespace imobif::net {
namespace {

// The bent path of core_policy_test: long flows enable mobility there.
std::vector<geom::Vec2> bent_path() {
  return {{0, 0}, {130, 50}, {260, -50}, {390, 0}};
}

TEST(LossyNotification, StatusConvergesWithRetriesUnderLoss) {
  test::HarnessOptions opts;
  opts.mode = core::MobilityMode::kInformed;
  opts.notify_retry_cap = 6;
  opts.notify_retry_timeout_s = util::Seconds{1.5};
  auto h = test::make_harness(bent_path(), opts);

  FaultPlan plan;
  plan.loss_rate = 0.3;  // ~0.7^3 = 34% of 3-hop deliveries survive
  plan.seed = 1234;
  h.net().medium().install_fault_plan(plan);

  exp::TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(util::Seconds{25.0});

  // Long enough that straightening the bent path pays (the clean-channel
  // equivalent in core_policy_test flips at this length).
  const double length_bits = 8192.0 * 4000;
  net::FlowSpec spec = test::default_flow(h.net(), length_bits);
  h.net().start_flow(spec);
  h.net().run_flows(
      util::Seconds{length_bits / spec.rate_bps.value() * 4.0 + 120.0});

  const net::FlowProgress& prog = h.net().progress(1);
  // Despite 30% per-hop loss, the destination's decision reached the
  // source (first attempts mostly die: per-attempt success is only ~34%).
  EXPECT_GE(prog.notifications_at_source, 1u);
  EXPECT_GT(prog.notification_retries, 0u);
  EXPECT_EQ(prog.notification_retries,
            trace.count(exp::TraceRecorder::Kind::kNotificationRetry));
  // The applied status actually enabled mobility.
  EXPECT_GT(h.policy->movements_applied(), 0u);
  const net::FlowEntry* src_entry = h.net().node(0).flows().find(1);
  ASSERT_NE(src_entry, nullptr);
  EXPECT_GT(src_entry->notify_applied_seq, 0u);
  EXPECT_GT(h.net().medium().counters().dropped_injected, 0u);

  // Energy accounting includes the retransmissions: the destination
  // transmits nothing but notifications (HELLOs are free here), so its
  // transmit energy must be at least the per-frame radio floor
  // a * notification_bits times every frame it sent, retries included.
  const auto dest_id =
      static_cast<net::NodeId>(h.net().node_count() - 1);
  const double per_frame_floor = 1e-7 * 512.0;  // a * notification_bits
  const double frames = static_cast<double>(prog.notifications_from_dest +
                                            prog.notification_retries);
  EXPECT_GE(h.net().node(dest_id).battery().consumed_transmit(),
            util::Joules{frames * per_frame_floor});
}

TEST(LossyNotification, RetryCapBoundsAttempts) {
  test::HarnessOptions opts;
  opts.mode = core::MobilityMode::kInformed;
  opts.notify_retry_cap = 3;
  opts.notify_retry_timeout_s = util::Seconds{1.0};
  auto h = test::make_harness(bent_path(), opts);

  FaultPlan plan;
  plan.loss_rate = 0.6;  // harsh: per-attempt 3-hop success is ~6%
  plan.seed = 5;
  h.net().medium().install_fault_plan(plan);
  h.net().warmup(util::Seconds{25.0});

  const double length_bits = 8192.0 * 4000;
  net::FlowSpec spec = test::default_flow(h.net(), length_bits);
  h.net().start_flow(spec);
  h.net().run_flows(
      util::Seconds{length_bits / spec.rate_bps.value() * 4.0 + 120.0});

  const net::FlowProgress& prog = h.net().progress(1);
  // Enough data survives the channel for the destination to decide at
  // least once, and the retry loop never exceeds cap attempts per
  // decision (graceful give-up instead of unbounded retransmission).
  EXPECT_GE(prog.notifications_from_dest, 1u);
  EXPECT_LE(prog.notification_retries, 3u * prog.notifications_from_dest);
  const net::FlowEntry* dest_entry =
      h.net()
          .node(static_cast<net::NodeId>(h.net().node_count() - 1))
          .flows()
          .find(1);
  if (dest_entry != nullptr) {
    EXPECT_LE(dest_entry->notify_attempts, 3u);
  }
}

TEST(LossyNotification, SourceRejectsStaleDecisions) {
  test::HarnessOptions opts;
  opts.mode = core::MobilityMode::kInformed;
  auto h = test::make_harness(test::line_positions(2, 100.0), opts);
  exp::TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(util::Seconds{15.0});
  h.net().start_flow(test::default_flow(h.net(), 8192.0 * 1000));

  Node& src = h.net().node(0);
  const FlowEntry* entry = src.flows().find(1);
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(entry->mobility_enabled);

  const auto deliver = [&src](std::uint32_t seq, bool enable) {
    NotificationBody body;
    body.flow_id = 1;
    body.flow_source = 0;
    body.enable = enable;
    body.decision_seq = seq;
    Packet pkt;
    pkt.type = PacketType::kNotification;
    pkt.sender.id = 1;
    pkt.link_dest = 0;
    pkt.size_bits = util::Bits{512.0};
    pkt.body = body;
    src.handle_receive(pkt);
  };

  deliver(2, true);
  EXPECT_TRUE(entry->mobility_enabled);
  EXPECT_EQ(entry->notify_applied_seq, 2u);

  // A late retransmission of decision 1 (or a duplicate of 2) must not
  // flip the status backwards.
  deliver(1, false);
  EXPECT_TRUE(entry->mobility_enabled);
  EXPECT_EQ(entry->notify_applied_seq, 2u);
  deliver(2, false);
  EXPECT_TRUE(entry->mobility_enabled);
  EXPECT_EQ(trace.count(exp::TraceRecorder::Kind::kDrop), 2u);

  // A genuinely newer decision applies.
  deliver(3, false);
  EXPECT_FALSE(entry->mobility_enabled);
  EXPECT_EQ(entry->notify_applied_seq, 3u);

  // Unstamped (decision_seq == 0) notifications keep the legacy
  // always-apply behaviour without resetting the monotone counter.
  deliver(0, true);
  EXPECT_TRUE(entry->mobility_enabled);
  EXPECT_EQ(entry->notify_applied_seq, 3u);
}

void expect_same_run(const exp::RunResult& a, const exp::RunResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.delivered_bits, b.delivered_bits);
  EXPECT_EQ(a.completion_s, b.completion_s);
  EXPECT_EQ(a.transmit_energy_j, b.transmit_energy_j);
  EXPECT_EQ(a.movement_energy_j, b.movement_energy_j);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.notify_retries, b.notify_retries);
  EXPECT_EQ(a.notifications_applied, b.notifications_applied);
  EXPECT_EQ(a.movements, b.movements);
  EXPECT_EQ(a.moved_distance_m, b.moved_distance_m);
  EXPECT_EQ(a.path, b.path);
  ASSERT_EQ(a.final_energies.size(), b.final_energies.size());
  for (std::size_t i = 0; i < a.final_energies.size(); ++i) {
    EXPECT_EQ(a.final_energies[i], b.final_energies[i]);  // bitwise
  }
}

// The acceptance gate of this subsystem: with zero loss and no fault
// plan, arming the reliability layer (retry cap > 0) must not perturb a
// single bit of any result — timers are scheduled and cancelled, but no
// retry ever fires and no suppression ever triggers.
TEST(LossyNotification, ZeroLossResultsBitIdenticalWithRetryCap) {
  exp::ScenarioParams base;
  base.node_count = 40;
  base.area_m = util::Meters{700.0};
  base.mean_flow_bits = util::Bits{50.0 * 1024.0 * 8.0};
  base.seed = 7;

  exp::ScenarioParams armed = base;
  armed.notify_retry_cap = 6;
  armed.notify_retry_timeout_s = util::Seconds{1.5};

  const auto legacy = runtime::run_comparison_parallel(base, 2, {}, 1);
  const auto reliable = runtime::run_comparison_parallel(armed, 2, {}, 1);
  ASSERT_EQ(legacy.size(), reliable.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].flow_bits, reliable[i].flow_bits);
    expect_same_run(legacy[i].baseline, reliable[i].baseline);
    expect_same_run(legacy[i].cost_unaware, reliable[i].cost_unaware);
    expect_same_run(legacy[i].informed, reliable[i].informed);
  }
}

TEST(LossyNotification, ModerateLossStillDeliversMostTraffic) {
  // Sanity on the medium-level counters surfaced through RunResult: a
  // moderately lossy run reports injected drops and still makes forward
  // progress on the data plane.
  exp::ScenarioParams p;
  p.node_count = 40;
  p.area_m = util::Meters{700.0};
  p.mean_flow_bits = util::Bits{30.0 * 1024.0 * 8.0};
  p.seed = 11;
  p.fault.loss_rate = 0.1;
  p.fault.seed = 99;
  p.notify_retry_cap = 6;

  const auto points = runtime::run_comparison_parallel(p, 2, {}, 2);
  for (const auto& pt : points) {
    EXPECT_GT(pt.informed.medium.dropped_injected, 0u);
    EXPECT_GT(pt.informed.delivered_bits, util::Bits{0.0});
    EXPECT_LT(pt.informed.delivered_bits, pt.flow_bits + util::Bits{1.0});
  }
}

}  // namespace
}  // namespace imobif::net
