#include "net/medium.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace imobif::net {
namespace {

using test::make_harness;

Packet hello_from(const Node& n) {
  Packet pkt;
  pkt.type = PacketType::kHello;
  pkt.sender = SenderStamp{n.id(), n.position(), n.battery().residual()};
  pkt.link_dest = kBroadcast;
  pkt.size_bits = util::Bits{256.0};
  pkt.body = HelloBody{};
  return pkt;
}

TEST(Medium, RejectsNonPositiveRange) {
  sim::Simulator sim;
  MediumConfig cfg;
  cfg.comm_range_m = 0.0;
  EXPECT_THROW(Medium(sim, cfg), std::invalid_argument);
}

TEST(Medium, AttachAndLookup) {
  auto h = make_harness({{0, 0}, {100, 0}});
  EXPECT_EQ(h.net().medium().node_count(), 2u);
  EXPECT_NE(h.net().medium().find_node(0), nullptr);
  EXPECT_NE(h.net().medium().find_node(1), nullptr);
  EXPECT_EQ(h.net().medium().find_node(42), nullptr);
}

TEST(Medium, TruePositionOracle) {
  auto h = make_harness({{0, 0}, {100, 50}});
  EXPECT_EQ(h.net().medium().true_position(1), (geom::Vec2{100, 50}));
  EXPECT_THROW(h.net().medium().true_position(9), std::out_of_range);
}

TEST(Medium, UnicastWithinRangeDelivers) {
  auto h = make_harness({{0, 0}, {100, 0}});
  Medium& medium = h.net().medium();
  EXPECT_TRUE(medium.unicast(h.net().node(0), 1, hello_from(h.net().node(0))));
  h.net().simulator().run();
  EXPECT_EQ(medium.counters().delivered, 1u);
  // The receiver learned the sender from the stamp.
  EXPECT_TRUE(h.net()
                  .node(1)
                  .neighbors()
                  .find(0, h.net().simulator().now())
                  .has_value());
}

TEST(Medium, UnicastIsPowerControlledByDefault) {
  // Unicast links model per-hop power control (Assumption 4): distance
  // beyond the nominal range is reachable, just more expensive.
  auto h = make_harness({{0, 0}, {500, 0}});  // nominal range is 180
  Medium& medium = h.net().medium();
  EXPECT_TRUE(
      medium.unicast(h.net().node(0), 1, hello_from(h.net().node(0))));
  EXPECT_EQ(medium.counters().dropped_out_of_range, 0u);
}

TEST(Medium, UnicastOutOfRangeDroppedWhenGated) {
  test::HarnessOptions opts;
  opts.unicast_range_gated = true;
  auto h = make_harness({{0, 0}, {500, 0}}, opts);  // range is 180
  Medium& medium = h.net().medium();
  EXPECT_FALSE(
      medium.unicast(h.net().node(0), 1, hello_from(h.net().node(0))));
  EXPECT_EQ(medium.counters().dropped_out_of_range, 1u);
  EXPECT_EQ(medium.counters().delivered, 0u);
}

TEST(Medium, UnicastToDeadNodeDropped) {
  auto h = make_harness({{0, 0}, {100, 0}});
  h.net().node(1).battery().draw(util::Joules{1e9},
                                 energy::DrawKind::kOther);
  EXPECT_FALSE(
      h.net().medium().unicast(h.net().node(0), 1, hello_from(h.net().node(0))));
  EXPECT_EQ(h.net().medium().counters().dropped_dead, 1u);
}

TEST(Medium, UnicastToUnknownDropped) {
  auto h = make_harness({{0, 0}, {100, 0}});
  EXPECT_FALSE(
      h.net().medium().unicast(h.net().node(0), 77, hello_from(h.net().node(0))));
  EXPECT_EQ(h.net().medium().counters().dropped_unknown, 1u);
}

TEST(Medium, BroadcastReachesAllInRangeExceptSender) {
  auto h = make_harness({{0, 0}, {100, 0}, {150, 0}, {400, 0}});
  h.net().medium().broadcast(h.net().node(0), hello_from(h.net().node(0)));
  h.net().simulator().run();
  // Nodes 1 (100 m) and 2 (150 m) hear it; node 3 (400 m) does not.
  EXPECT_EQ(h.net().medium().counters().delivered, 2u);
  const auto now = h.net().simulator().now();
  EXPECT_TRUE(h.net().node(1).neighbors().find(0, now).has_value());
  EXPECT_TRUE(h.net().node(2).neighbors().find(0, now).has_value());
  EXPECT_FALSE(h.net().node(3).neighbors().find(0, now).has_value());
  EXPECT_FALSE(h.net().node(0).neighbors().find(0, now).has_value());
}

TEST(Medium, DeliveryIsDelayedByPropagation) {
  auto h = make_harness({{0, 0}, {100, 0}});
  h.net().medium().unicast(h.net().node(0), 1, hello_from(h.net().node(0)));
  // Nothing delivered until the propagation delay elapses.
  EXPECT_FALSE(h.net()
                   .node(1)
                   .neighbors()
                   .find(0, h.net().simulator().now())
                   .has_value());
  h.net().simulator().run();
  EXPECT_GT(h.net().simulator().now(), sim::Time::zero());
}

TEST(Medium, DuplicateNodeIdRejected) {
  sim::Simulator sim;
  Medium medium(sim, MediumConfig{});
  energy::RadioEnergyModel radio{energy::RadioParams{}};
  Node::Services services;
  services.sim = &sim;
  services.medium = &medium;
  services.radio = &radio;
  Node a(1, {0, 0}, util::Joules{10.0}, services);
  Node dup(1, {5, 5}, util::Joules{10.0}, services);
  medium.attach(a);
  EXPECT_THROW(medium.attach(dup), std::invalid_argument);
}

}  // namespace
}  // namespace imobif::net
