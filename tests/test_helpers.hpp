// Shared fixtures for network-level tests: small deterministic topologies.
#pragma once

#include <memory>
#include <vector>

#include "core/imobif.hpp"

namespace imobif::test {

/// A Network plus the policy that must outlive it, bundled so tests can
/// build line topologies in one call.
struct Harness {
  std::unique_ptr<net::Network> network;
  std::unique_ptr<energy::MobilityEnergyModel> mobility;
  std::unique_ptr<core::ImobifPolicy> policy;

  net::Network& net() { return *network; }
};

struct HarnessOptions {
  double comm_range_m = 180.0;
  util::Joules initial_energy_j{2000.0};
  double k = 0.5;
  double max_step_m = 1.0;
  double radio_a = 1e-7;
  double radio_b = 5e-10;
  double radio_alpha = 2.0;
  double hello_interval_s = 10.0;
  bool charge_hello_energy = false;
  bool unicast_range_gated = false;
  core::MobilityMode mode = core::MobilityMode::kInformed;
  double alpha_prime = 0.0;
  /// Notification reliability (0 keeps the fire-and-forget default).
  std::uint32_t notify_retry_cap = 0;
  util::Seconds notify_retry_timeout_s{2.0};
};

/// Builds a network with nodes at the given positions (ids 0..n-1), greedy
/// routing, and a default policy in the given mode.
inline Harness make_harness(const std::vector<geom::Vec2>& positions,
                            const HarnessOptions& opts = {}) {
  Harness h;
  net::NetworkConfig config;
  config.medium.comm_range_m = opts.comm_range_m;
  config.medium.unicast_range_gated = opts.unicast_range_gated;
  config.node.hello_interval = sim::Time::from_seconds(opts.hello_interval_s);
  config.node.neighbor_timeout =
      sim::Time::from_seconds(4.5 * opts.hello_interval_s);
  config.node.charge_hello_energy = opts.charge_hello_energy;
  config.node.notify_retry_cap = opts.notify_retry_cap;
  config.node.notify_retry_timeout =
      sim::Time::from_seconds(opts.notify_retry_timeout_s.value());
  config.radio.a = opts.radio_a;
  config.radio.b = opts.radio_b;
  config.radio.alpha = opts.radio_alpha;

  h.network = std::make_unique<net::Network>(config);
  for (const auto& pos : positions) {
    h.network->add_node(pos, opts.initial_energy_j);
  }
  h.network->set_routing(
      std::make_unique<net::GreedyRouting>(h.network->medium()));

  energy::MobilityParams mp;
  mp.k = opts.k;
  mp.max_step_m = opts.max_step_m;
  h.mobility = std::make_unique<energy::MobilityEnergyModel>(mp);
  h.policy = core::make_default_policy(h.network->radio(), *h.mobility,
                                       opts.mode, opts.alpha_prime);
  h.network->set_policy(h.policy.get());
  return h;
}

/// Evenly spaced positions on a horizontal line from (0, y) to (length, y).
inline std::vector<geom::Vec2> line_positions(std::size_t count,
                                              double length,
                                              double y = 0.0) {
  std::vector<geom::Vec2> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(length * static_cast<double>(i) /
                         static_cast<double>(count - 1),
                     y);
  }
  return out;
}

/// A default one-to-one flow spec over nodes 0 -> last.
inline net::FlowSpec default_flow(const net::Network& network,
                                  double length_bits,
                                  net::StrategyId strategy =
                                      net::StrategyId::kMinTotalEnergy) {
  net::FlowSpec spec;
  spec.id = 1;
  spec.source = 0;
  spec.destination = static_cast<net::NodeId>(network.node_count() - 1);
  spec.length_bits = util::Bits{length_bits};
  spec.strategy = strategy;
  return spec;
}

}  // namespace imobif::test
