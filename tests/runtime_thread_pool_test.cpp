// ThreadPool: futures-based results in submission order, exception
// propagation, and graceful shutdown under load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace imobif::runtime {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  auto future = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ClampsZeroWorkersToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ResultsArriveInSubmissionOrderRegardlessOfCompletion) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  // Earlier tasks sleep longer, so completion order inverts submission
  // order; collecting futures in order must still yield 0..15.
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([i] {
      std::this_thread::sleep_for(std::chrono::microseconds((16 - i) * 100));
      return i;
    }));
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  }
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 1; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      // Discard the futures: completion is observed via the counter.
      pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++executed;
      });
    }
    pool.shutdown();  // graceful: every queued task runs first
    EXPECT_EQ(executed.load(), 64);
  }
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 0; }), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotentAndRunByDestructor) {
  ThreadPool pool(3);
  auto future = pool.submit([] { return 5; });
  EXPECT_EQ(future.get(), 5);
  pool.shutdown();
  pool.shutdown();  // second call is a no-op
}

TEST(ThreadPool, ManyProducersUnderLoad) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&pool, &sum] {
      std::vector<std::future<void>> futures;
      for (int i = 1; i <= 250; ++i) {
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(sum.load(), 4L * 250 * 251 / 2);
}

}  // namespace
}  // namespace imobif::runtime
