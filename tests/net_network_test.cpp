#include "net/network.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace imobif::net {
namespace {

using test::default_flow;
using test::line_positions;
using test::make_harness;
using util::Joules;
using util::Seconds;

TEST(Network, AddNodeAssignsDenseIds) {
  auto h = make_harness({{0, 0}, {1, 1}, {2, 2}});
  EXPECT_EQ(h.net().node_count(), 3u);
  EXPECT_EQ(h.net().node(0).id(), 0u);
  EXPECT_EQ(h.net().node(2).id(), 2u);
  EXPECT_THROW(h.net().node(3), std::out_of_range);
}

TEST(Network, StartFlowValidatesSpec) {
  auto h = make_harness(line_positions(3, 300.0));
  FlowSpec bad = default_flow(h.net(), 8192.0);
  bad.id = kInvalidFlow;
  EXPECT_THROW(h.net().start_flow(bad), std::invalid_argument);

  bad = default_flow(h.net(), 8192.0);
  bad.source = bad.destination;
  EXPECT_THROW(h.net().start_flow(bad), std::invalid_argument);

  bad = default_flow(h.net(), 0.0);
  EXPECT_THROW(h.net().start_flow(bad), std::invalid_argument);

  FlowSpec good = default_flow(h.net(), 8192.0);
  h.net().start_flow(good);
  EXPECT_THROW(h.net().start_flow(good), std::invalid_argument);  // dup id
}

TEST(Network, FlowEmitsExpectedPacketCount) {
  auto h = make_harness(line_positions(3, 300.0));
  h.net().warmup(Seconds{25.0});
  FlowSpec spec = default_flow(h.net(), 8192.0 * 5);
  h.net().start_flow(spec);
  h.net().run_flows(Seconds{60.0});
  const FlowProgress& prog = h.net().progress(spec.id);
  EXPECT_EQ(prog.packets_emitted, 5u);
  EXPECT_EQ(prog.packets_delivered, 5u);
  EXPECT_TRUE(prog.completed);
  EXPECT_TRUE(prog.completion_time.has_value());
}

TEST(Network, PartialFinalPacket) {
  auto h = make_harness(line_positions(3, 300.0));
  h.net().warmup(Seconds{25.0});
  FlowSpec spec = default_flow(h.net(), 8192.0 * 2.5);
  h.net().start_flow(spec);
  h.net().run_flows(Seconds{60.0});
  const FlowProgress& prog = h.net().progress(spec.id);
  EXPECT_EQ(prog.packets_emitted, 3u);  // 2 full + 1 half packet
  EXPECT_TRUE(prog.completed);
  EXPECT_DOUBLE_EQ(prog.delivered_bits.value(), 8192.0 * 2.5);
}

TEST(Network, FlowPacingMatchesRate) {
  auto h = make_harness(line_positions(3, 300.0));
  h.net().warmup(Seconds{25.0});
  const double start_s = h.net().simulator().now().seconds();
  FlowSpec spec = default_flow(h.net(), 8192.0 * 10);  // 10 packets at 1/s
  h.net().start_flow(spec);
  h.net().run_flows(Seconds{120.0});
  const FlowProgress& prog = h.net().progress(spec.id);
  ASSERT_TRUE(prog.completion_time.has_value());
  const double elapsed = prog.completion_time->seconds() - start_s;
  EXPECT_NEAR(elapsed, 10.0, 0.5);  // 10 x 1 s intervals + prop delays
}

TEST(Network, RunFlowsStopsOnCompletion) {
  auto h = make_harness(line_positions(3, 300.0));
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0));
  const Seconds elapsed = h.net().run_flows(Seconds{10000.0});
  EXPECT_LT(elapsed, Seconds{100.0});  // returned long before the horizon
  EXPECT_TRUE(h.net().all_flows_complete());
}

TEST(Network, StallDetectionEndsRun) {
  // Break the path by killing the middle relay: the flow can never finish,
  // and run_flows must give up after the stall window.
  auto h = make_harness(line_positions(3, 300.0));
  h.net().warmup(Seconds{25.0});
  h.net().node(1).battery().draw(Joules{1e9}, energy::DrawKind::kOther);
  h.net().start_flow(default_flow(h.net(), 8192.0 * 100));
  const Seconds elapsed =
      h.net().run_flows(Seconds{10000.0}, /*stall_window=*/Seconds{30.0});
  EXPECT_FALSE(h.net().progress(1).completed);
  EXPECT_LT(elapsed, Seconds{200.0});
}

TEST(Network, FirstDeathRecorded) {
  test::HarnessOptions opts;
  opts.initial_energy_j = util::Joules{0.2};
  auto h = make_harness(line_positions(3, 300.0), opts);
  h.net().warmup(Seconds{5.0});
  EXPECT_FALSE(h.net().first_death_time().has_value());
  h.net().start_flow(default_flow(h.net(), 8192.0 * 1000));
  h.net().run_flows(Seconds{300.0}, Seconds{30.0});
  EXPECT_TRUE(h.net().first_death_time().has_value());
  EXPECT_GT(h.net().dead_node_count(), 0u);
}

TEST(Network, StopOnFirstDeathEndsRunImmediately) {
  test::HarnessOptions opts;
  opts.initial_energy_j = util::Joules{0.2};
  auto h = make_harness(line_positions(3, 300.0), opts);
  h.net().set_stop_on_first_death(true);
  h.net().warmup(Seconds{5.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 1000));
  h.net().run_flows(Seconds{5000.0}, Seconds{1000.0});
  ASSERT_TRUE(h.net().first_death_time().has_value());
  // The run ended at (or just after) the death, not at the stall window.
  EXPECT_LE((h.net().simulator().now() - *h.net().first_death_time())
                .seconds(),
            6.0);
}

TEST(Network, EnergyAccountingSumsNodeBatteries) {
  auto h = make_harness(line_positions(3, 300.0));
  h.net().warmup(Seconds{25.0});
  h.net().start_flow(default_flow(h.net(), 8192.0 * 4));
  h.net().run_flows(Seconds{60.0});
  Joules tx{0.0}, move{0.0}, total{0.0};
  for (NodeId id = 0; id < 3; ++id) {
    tx += h.net().node(id).battery().consumed_transmit();
    move += h.net().node(id).battery().consumed_move();
    total += h.net().node(id).battery().consumed_total();
  }
  EXPECT_DOUBLE_EQ(h.net().total_transmit_energy().value(), tx.value());
  EXPECT_DOUBLE_EQ(h.net().total_movement_energy().value(), move.value());
  EXPECT_DOUBLE_EQ(h.net().total_consumed_energy().value(), total.value());
  EXPECT_GT(tx, Joules{0.0});
}

TEST(Network, PositionsSnapshot) {
  auto h = make_harness({{0, 0}, {5, 7}});
  const auto pos = h.net().positions();
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[1], (geom::Vec2{5, 7}));
}

TEST(Network, ProgressUnknownFlowThrows) {
  auto h = make_harness({{0, 0}, {5, 7}});
  EXPECT_THROW(h.net().progress(99), std::out_of_range);
}

TEST(Network, AllProgressListsFlows) {
  auto h = make_harness(line_positions(3, 300.0));
  h.net().warmup(Seconds{25.0});
  FlowSpec a = default_flow(h.net(), 8192.0);
  FlowSpec b = default_flow(h.net(), 8192.0);
  b.id = 2;
  b.source = 2;
  b.destination = 0;
  h.net().start_flow(a);
  h.net().start_flow(b);
  EXPECT_EQ(h.net().all_progress().size(), 2u);
  h.net().run_flows(Seconds{60.0});
  EXPECT_TRUE(h.net().all_flows_complete());
}

TEST(Network, EmptyNetworkFlowsComplete) {
  auto h = make_harness({{0, 0}, {1, 1}});
  EXPECT_TRUE(h.net().all_flows_complete());
}

}  // namespace
}  // namespace imobif::net
