// Direct unit tests of the two benefit estimators' header plumbing
// (seed_at_source / on_relay / evaluate_at_destination), complementing the
// end-to-end coverage in core_policy_test and ablation A5.
#include <gtest/gtest.h>

#include <limits>

#include "test_helpers.hpp"

namespace imobif::core {
namespace {

using test::make_harness;
using util::Bits;
using util::Joules;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Fixture {
  test::Harness h = test::make_harness(
      {{0, 0}, {150, 20}, {300, 0}});  // source, relay, dest
  net::FlowEntry source_entry;
  net::FlowEntry relay_entry;
  net::DataBody data;

  Fixture() {
    h.net().warmup(util::Seconds{25.0});
    source_entry.id = 1;
    source_entry.source = 0;
    source_entry.destination = 2;
    source_entry.next = 1;
    relay_entry = source_entry;
    relay_entry.prev = 0;
    relay_entry.next = 2;
    data.flow_id = 1;
    data.source = 0;
    data.destination = 2;
    data.strategy = net::StrategyId::kMinTotalEnergy;
    data.residual_flow_bits = Bits{1e6};
  }
};

TEST(HopReceiverEstimator, SeedInitializesIdentityAndPlan) {
  Fixture f;
  f.h.policy->seed_at_source(f.h.net().node(0), f.data, f.source_entry);
  EXPECT_EQ(f.data.agg.bits_mob, Bits{kInf});
  EXPECT_EQ(f.data.agg.bits_nomob, Bits{kInf});
  EXPECT_EQ(f.data.agg.resi_mob, Joules{0.0});  // sum identity for min-energy
  EXPECT_TRUE(f.data.sender_has_plan);
  EXPECT_EQ(f.data.sender_target, f.h.net().node(0).position());
  EXPECT_DOUBLE_EQ(f.data.sender_move_cost.value(), 0.0);
}

TEST(HopReceiverEstimator, RelayFoldsHopAndStampsOwnPlan) {
  Fixture f;
  f.h.policy->seed_at_source(f.h.net().node(0), f.data, f.source_entry);
  f.h.policy->on_relay(f.h.net().node(1), f.data, f.relay_entry);

  // The fold replaced the identities with the source->relay hop values.
  EXPECT_LT(f.data.agg.bits_mob, Bits{kInf});
  EXPECT_LT(f.data.agg.bits_nomob, Bits{kInf});
  EXPECT_NE(f.data.agg.resi_nomob, Joules{0.0});

  // The relay stamped its own plan: the min-energy target is the midpoint
  // of source and dest, and the move cost is k times the distance to it.
  ASSERT_TRUE(f.relay_entry.target.has_value());
  EXPECT_TRUE(f.data.sender_has_plan);
  EXPECT_EQ(f.data.sender_target, *f.relay_entry.target);
  const double dist = geom::distance(f.h.net().node(1).position(),
                                     *f.relay_entry.target);
  EXPECT_NEAR(f.data.sender_move_cost.value(), 0.5 * dist, 1e-9);
  EXPECT_EQ(*f.relay_entry.target,
            geom::midpoint(f.h.net().node(0).position(),
                           f.h.net().node(2).position()));
}

TEST(HopReceiverEstimator, CapBindsAggregatedBits) {
  Fixture f;
  f.data.residual_flow_bits = Bits{1000.0};  // tiny residual: cap binds
  f.h.policy->seed_at_source(f.h.net().node(0), f.data, f.source_entry);
  f.h.policy->on_relay(f.h.net().node(1), f.data, f.relay_entry);
  EXPECT_DOUBLE_EQ(f.data.agg.bits_mob.value(), 1000.0);
  EXPECT_DOUBLE_EQ(f.data.agg.bits_nomob.value(), 1000.0);
}

TEST(HopReceiverEstimator, UncappedExceedsResidual) {
  Fixture f;
  f.h.policy->set_cap_bits(false);
  f.data.residual_flow_bits = Bits{1000.0};
  f.h.policy->seed_at_source(f.h.net().node(0), f.data, f.source_entry);
  f.h.policy->on_relay(f.h.net().node(1), f.data, f.relay_entry);
  EXPECT_GT(f.data.agg.bits_nomob, Bits{1000.0});
}

TEST(PaperLocalEstimator, SeedCarriesSourceValues) {
  Fixture f;
  f.h.policy->set_estimator(BenefitEstimator::kPaperLocal);
  f.h.policy->seed_at_source(f.h.net().node(0), f.data, f.source_entry);
  // No plan stamping in the literal Figure-1 listing.
  EXPECT_FALSE(f.data.sender_has_plan);
  // Source values coincide across alternatives (the source cannot move).
  EXPECT_DOUBLE_EQ(f.data.agg.bits_mob.value(), f.data.agg.bits_nomob.value());
  EXPECT_DOUBLE_EQ(f.data.agg.resi_mob.value(), f.data.agg.resi_nomob.value());
  EXPECT_GT(f.data.agg.bits_nomob, Bits{0.0});
}

TEST(PaperLocalEstimator, RelayAggregatesOwnOutHop) {
  Fixture f;
  f.h.policy->set_estimator(BenefitEstimator::kPaperLocal);
  f.h.policy->seed_at_source(f.h.net().node(0), f.data, f.source_entry);
  const Joules seed_resi = f.data.agg.resi_nomob;
  f.h.policy->on_relay(f.h.net().node(1), f.data, f.relay_entry);
  // Sum-aggregation added the relay's own expected residual.
  EXPECT_NE(f.data.agg.resi_nomob, seed_resi);
  ASSERT_TRUE(f.relay_entry.target.has_value());
}

TEST(Estimators, NoMobilityModeNeverTouchesHeaders) {
  test::HarnessOptions opts;
  opts.mode = MobilityMode::kNoMobility;
  auto h = make_harness({{0, 0}, {150, 20}, {300, 0}}, opts);
  net::FlowEntry entry;
  entry.next = 1;
  net::DataBody data;
  data.strategy = net::StrategyId::kMinTotalEnergy;
  h.policy->seed_at_source(h.net().node(0), data, entry);
  EXPECT_FALSE(data.sender_has_plan);
  EXPECT_EQ(data.agg.bits_mob, Bits{0.0});
}

TEST(Estimators, UnknownStrategyIgnored) {
  Fixture f;
  f.data.strategy = static_cast<net::StrategyId>(123);
  f.h.policy->seed_at_source(f.h.net().node(0), f.data, f.source_entry);
  EXPECT_FALSE(f.data.sender_has_plan);
  f.h.policy->on_relay(f.h.net().node(1), f.data, f.relay_entry);
  EXPECT_FALSE(f.relay_entry.target.has_value());
}

}  // namespace
}  // namespace imobif::core
