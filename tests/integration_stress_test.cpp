// Randomized stress: many simultaneous flows over random topologies under
// every mobility mode, asserting global invariants that must hold no
// matter what the protocol machinery does:
//
//   * per-node energy conservation (initial = residual + consumed);
//   * consumption decomposes exactly into tx + move + other;
//   * delivered bits never exceed emitted bits per flow;
//   * medium counters are internally consistent;
//   * simulated time advances monotonically and the run terminates.
#include <gtest/gtest.h>

#include "exp/trace.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace imobif::net {
namespace {

struct StressCase {
  std::uint64_t seed;
  core::MobilityMode mode;
};

class StressAcrossModes : public ::testing::TestWithParam<StressCase> {};

TEST_P(StressAcrossModes, InvariantsHold) {
  const StressCase param = GetParam();
  util::Rng rng(param.seed);

  // Random connected-ish topology: nodes uniform in a square sized so the
  // density is comfortably above the greedy-routing threshold.
  std::vector<geom::Vec2> positions;
  const std::size_t n = 40;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({rng.uniform(0.0, 600.0), rng.uniform(0.0, 600.0)});
  }
  test::HarnessOptions opts;
  opts.mode = param.mode;
  opts.initial_energy_j = util::Joules{50.0};
  opts.k = 0.3;
  auto h = test::make_harness(positions, opts);
  exp::TraceRecorder trace;
  h.net().set_event_tap(&trace);
  h.net().warmup(util::Seconds{25.0});

  // Several random flows; some pairs may be unroutable — that is part of
  // the stress (the pump emits, greedy fails, drops count).
  int started = 0;
  for (FlowId id = 1; id <= 6; ++id) {
    FlowSpec spec;
    spec.id = id;
    spec.source = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    spec.destination = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (spec.source == spec.destination) continue;
    spec.length_bits = util::Bits{8192.0 * rng.uniform(1.0, 200.0)};
    spec.strategy = (id % 2 == 0) ? StrategyId::kMaxLifetime
                                  : StrategyId::kMinTotalEnergy;
    spec.initially_enabled = (param.mode == core::MobilityMode::kCostUnaware);
    h.net().start_flow(spec);
    ++started;
  }
  ASSERT_GT(started, 0);

  const util::Seconds elapsed =
      h.net().run_flows(util::Seconds{2500.0}, util::Seconds{60.0});
  EXPECT_GT(elapsed, util::Seconds{0.0});

  // Energy conservation and decomposition, every node.
  for (std::size_t i = 0; i < h.net().node_count(); ++i) {
    const auto& b = h.net().node(static_cast<NodeId>(i)).battery();
    EXPECT_NEAR(b.initial().value(),
                (b.residual() + b.consumed_total()).value(), 1e-6);
    EXPECT_NEAR(b.consumed_total().value(),
                (b.consumed_transmit() + b.consumed_move() +
                 b.consumed_other())
                    .value(),
                1e-6);
    EXPECT_GE(b.residual(), util::Joules{0.0});
  }

  // Flow accounting.
  for (const FlowProgress* prog : h.net().all_progress()) {
    EXPECT_LE(prog->delivered_bits, prog->emitted_bits + util::Bits{1e-9});
    EXPECT_LE(prog->packets_delivered, prog->packets_emitted);
    if (prog->completed) {
      EXPECT_NEAR(prog->delivered_bits.value(),
                  prog->spec.length_bits.value(), 1e-6);
      ASSERT_TRUE(prog->completion_time.has_value());
    }
  }

  // Medium counters: every delivery stems from some transmission.
  const auto& counters = h.net().medium().counters();
  EXPECT_LE(counters.dropped_dead + counters.dropped_out_of_range +
                counters.dropped_unknown,
            counters.unicasts);

  // Movement bookkeeping agrees between policy and nodes.
  double node_moved = 0.0;
  for (std::size_t i = 0; i < h.net().node_count(); ++i) {
    node_moved +=
        h.net().node(static_cast<NodeId>(i)).total_moved().value();
  }
  EXPECT_NEAR(h.policy->total_distance_moved().value(), node_moved, 1e-9);
  if (param.mode == core::MobilityMode::kNoMobility) {
    EXPECT_DOUBLE_EQ(node_moved, 0.0);
  }

  // Trace entries are time-ordered.
  double prev = 0.0;
  for (const auto& entry : trace.entries()) {
    EXPECT_GE(entry.time_s, prev);
    prev = entry.time_s;
  }
}

std::vector<StressCase> cases() {
  std::vector<StressCase> out;
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    for (const auto mode :
         {core::MobilityMode::kNoMobility, core::MobilityMode::kCostUnaware,
          core::MobilityMode::kInformed}) {
      out.push_back({seed, mode});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, StressAcrossModes,
                         ::testing::ValuesIn(cases()));

}  // namespace
}  // namespace imobif::net
