#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace imobif::geom {
namespace {

TEST(Vec2, DefaultIsOrigin) {
  Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, (Vec2{4.0, -2.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += Vec2{2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= Vec2{1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -2.0);
  EXPECT_DOUBLE_EQ(a.cross(a), 0.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, v), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 v{3.0, 4.0};
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.x, 0.6, 1e-12);
  EXPECT_NEAR(u.y, 0.8, 1e-12);
}

TEST(Vec2, NormalizedZeroStaysZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, LerpEndpointsAndMidpoint) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), midpoint(a, b));
  EXPECT_EQ(midpoint(a, b), (Vec2{5.0, 10.0}));
}

TEST(Vec2, AlmostEqual) {
  EXPECT_TRUE(almost_equal({1.0, 1.0}, {1.0 + 1e-10, 1.0 - 1e-10}));
  EXPECT_FALSE(almost_equal({1.0, 1.0}, {1.1, 1.0}));
  EXPECT_TRUE(almost_equal({1.0, 1.0}, {1.05, 1.0}, 0.1));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2.5};
  EXPECT_EQ(os.str(), "(1.5, -2.5)");
}

// Property: the triangle inequality holds for random points.
TEST(Vec2Property, TriangleInequality) {
  util::Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const Vec2 a{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Vec2 b{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Vec2 c{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    EXPECT_LE(distance(a, c), distance(a, b) + distance(b, c) + 1e-9);
  }
}

// Property: lerp(a, b, t) lies on the segment, at the expected distance.
TEST(Vec2Property, LerpDistanceProportional) {
  util::Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const Vec2 a{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const Vec2 b{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const double t = rng.uniform01();
    const Vec2 p = lerp(a, b, t);
    EXPECT_NEAR(distance(a, p), t * distance(a, b), 1e-9);
    EXPECT_NEAR(distance(p, b), (1.0 - t) * distance(a, b), 1e-9);
  }
}

}  // namespace
}  // namespace imobif::geom
