#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

namespace imobif::util {
namespace {

PlotOptions small_opts() {
  PlotOptions o;
  o.width = 40;
  o.height = 10;
  o.title = "test-plot";
  o.x_label = "x";
  o.y_label = "y";
  return o;
}

TEST(RenderScatter, ContainsTitleMarkersAndLegend) {
  Series s;
  s.name = "series-a";
  s.marker = '#';
  s.xs = {0.0, 1.0, 2.0};
  s.ys = {0.0, 1.0, 4.0};
  const std::string out = render_scatter({s}, small_opts());
  EXPECT_NE(out.find("test-plot"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("series-a"), std::string::npos);
  EXPECT_NE(out.find("x: x"), std::string::npos);
}

TEST(RenderScatter, EmptySeriesStillRenders) {
  const std::string out = render_scatter({}, small_opts());
  EXPECT_FALSE(out.empty());
  EXPECT_NE(out.find('+'), std::string::npos);  // axis corner
}

TEST(RenderScatter, HorizontalReferenceLine) {
  Series s;
  s.name = "pts";
  s.marker = '*';
  s.xs = {0.0, 1.0};
  s.ys = {0.0, 2.0};
  PlotOptions o = small_opts();
  o.h_line = 1.0;
  const std::string out = render_scatter({s}, o);
  // The reference line row should contain a run of dashes.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(RenderScatter, TwoSeriesBothPresent) {
  Series a{.name = "a", .marker = 'o', .xs = {0, 1}, .ys = {0, 1}};
  Series b{.name = "b", .marker = 'x', .xs = {0, 1}, .ys = {1, 0}};
  const std::string out = render_scatter({a, b}, small_opts());
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(RenderScatter, ConstantSeriesDoesNotDivideByZero) {
  Series s{.name = "flat", .marker = '*', .xs = {1, 2, 3}, .ys = {5, 5, 5}};
  const std::string out = render_scatter({s}, small_opts());
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(RenderCdf, UsesSamplesFromYs) {
  Series s;
  s.name = "lifetimes";
  s.marker = '+';
  s.ys = {1.0, 2.0, 2.0, 3.0, 10.0};
  PlotOptions o = small_opts();
  o.y_label.clear();
  const std::string out = render_cdf({s}, o);
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find("CDF"), std::string::npos);
}

}  // namespace
}  // namespace imobif::util
