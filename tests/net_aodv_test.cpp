#include "net/aodv_routing.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace imobif::net {
namespace {

using test::line_positions;
using test::make_harness;

struct AodvFixture {
  test::Harness h;
  AodvRouting* aodv = nullptr;

  explicit AodvFixture(std::vector<geom::Vec2> positions)
      : h(make_harness(std::move(positions))) {
    auto routing = std::make_unique<AodvRouting>(h.net().medium());
    aodv = routing.get();
    h.net().set_routing(std::move(routing));
  }

  void discover(NodeId origin, NodeId target) {
    aodv->prepare_route(h.net().node(origin), target);
    h.net().simulator().run(h.net().simulator().now() +
                            sim::Time::from_seconds(5.0));
  }
};

TEST(Aodv, NoRouteBeforeDiscovery) {
  AodvFixture f(line_positions(4, 450.0));
  EXPECT_EQ(f.aodv->next_hop(f.h.net().node(0), 3), kInvalidNode);
}

TEST(Aodv, DiscoveryInstallsForwardRoute) {
  AodvFixture f(line_positions(4, 450.0));
  f.discover(0, 3);
  EXPECT_EQ(f.aodv->next_hop(f.h.net().node(0), 3), 1u);
  EXPECT_EQ(f.aodv->next_hop(f.h.net().node(1), 3), 2u);
  EXPECT_EQ(f.aodv->next_hop(f.h.net().node(2), 3), 3u);
}

TEST(Aodv, DiscoveryInstallsReverseRoute) {
  AodvFixture f(line_positions(4, 450.0));
  f.discover(0, 3);
  // RREQ flooding installed routes back to the origin everywhere it went.
  EXPECT_EQ(f.aodv->next_hop(f.h.net().node(3), 0), 2u);
  EXPECT_EQ(f.aodv->next_hop(f.h.net().node(2), 0), 1u);
}

TEST(Aodv, RouteInfoHopCounts) {
  AodvFixture f(line_positions(4, 450.0));
  f.discover(0, 3);
  const auto* route = f.aodv->route(0, 3);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->hop_count, 3u);
  const auto* mid = f.aodv->route(1, 3);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->hop_count, 2u);
}

TEST(Aodv, DuplicateRequestsSuppressed) {
  AodvFixture f(line_positions(4, 450.0));
  f.discover(0, 3);
  const auto rreq_first = f.aodv->rreq_sent();
  // Re-discovery with an existing route is a no-op.
  f.discover(0, 3);
  EXPECT_EQ(f.aodv->rreq_sent(), rreq_first);
}

TEST(Aodv, FloodingIsBoundedByTopology) {
  AodvFixture f(line_positions(5, 600.0));
  f.discover(0, 4);
  // Each of the 5 nodes forwards a given RREQ at most once.
  EXPECT_LE(f.aodv->rreq_sent(), 5u);
  EXPECT_GE(f.aodv->rrep_sent(), 1u);
}

TEST(Aodv, WorksOnBranchedTopology) {
  // Two disjoint relay chains between 0 and 4:
  //   upper: 0 - 1 - 3 - 4
  //   lower: 0 - 2 - 5 - 4
  AodvFixture f({{0, 0},
                 {120, 90},
                 {120, -90},
                 {280, 90},
                 {400, 0},
                 {280, -90}});
  f.discover(0, 4);
  const NodeId hop = f.aodv->next_hop(f.h.net().node(0), 4);
  EXPECT_TRUE(hop == 1u || hop == 2u);
  // The route actually leads to the target.
  NodeId cur = 0;
  int steps = 0;
  while (cur != 4 && steps++ < 6) {
    cur = f.aodv->next_hop(f.h.net().node(cur), 4);
    ASSERT_NE(cur, kInvalidNode);
  }
  EXPECT_EQ(cur, 4u);
}

TEST(Aodv, UnreachableTargetYieldsNoRoute) {
  AodvFixture f({{0, 0}, {150, 0}, {1000, 0}});
  f.discover(0, 2);
  EXPECT_EQ(f.aodv->next_hop(f.h.net().node(0), 2), kInvalidNode);
}

TEST(Aodv, ControlTrafficConsumesEnergy) {
  AodvFixture f(line_positions(4, 450.0));
  const util::Joules before = f.h.net().node(1).battery().residual();
  f.discover(0, 3);
  EXPECT_LT(f.h.net().node(1).battery().residual(), before);
}

TEST(Aodv, DataFlowRunsOverDiscoveredRoutes) {
  AodvFixture f(line_positions(4, 450.0));
  f.discover(0, 3);
  f.h.net().start_flow(test::default_flow(f.h.net(), 8192.0 * 2));
  f.h.net().run_flows(util::Seconds{30.0});
  EXPECT_TRUE(f.h.net().progress(1).completed);
}

}  // namespace
}  // namespace imobif::net
