#include "core/lifetime_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/max_lifetime_strategy.hpp"
#include "util/rng.hpp"

namespace imobif::core {
namespace {

using util::Joules;
using util::Meters;

energy::RadioParams radio(double a, double b, double alpha) {
  energy::RadioParams p;
  p.a = a;
  p.b = b;
  p.alpha = alpha;
  return p;
}

double power(const energy::RadioParams& p, double d) {
  return p.a + p.b * std::pow(d, p.alpha);
}

TEST(LifetimeSolver, EqualEnergiesSplitInHalf) {
  const auto p = radio(1e-7, 1e-10, 2.0);
  EXPECT_NEAR(
      exact_lifetime_split(p, Joules{10.0}, Joules{10.0}, Meters{200.0})
          .value(),
      100.0, 1e-4);
}

TEST(LifetimeSolver, SolutionSatisfiesTheoremCondition) {
  util::Rng rng(4);
  for (const double alpha : {1.5, 2.0, 3.0, 4.0}) {
    const auto p = radio(1e-7, 1e-10, alpha);
    for (int i = 0; i < 200; ++i) {
      const double e_prev = rng.uniform(1.0, 100.0);
      const double e_self = rng.uniform(1.0, 100.0);
      const double total = rng.uniform(50.0, 400.0);
      const double d_prev =
          exact_lifetime_split(p, Joules{e_prev}, Joules{e_self},
                               Meters{total}, Meters{1e-9})
              .value();
      if (d_prev <= 0.0 || d_prev >= total) continue;  // clamped case
      const double ratio = power(p, d_prev) / power(p, total - d_prev);
      EXPECT_NEAR(ratio, e_prev / e_self, 1e-5 * (e_prev / e_self))
          << "alpha=" << alpha;
    }
  }
}

TEST(LifetimeSolver, ClampsUnreachableRatios) {
  // With a large electronics constant, P varies little; an extreme energy
  // ratio cannot be balanced and the split saturates.
  const auto p = radio(1.0, 1e-10, 2.0);
  EXPECT_DOUBLE_EQ(
      exact_lifetime_split(p, Joules{1e9}, Joules{1.0}, Meters{100.0}).value(),
      100.0);
  EXPECT_DOUBLE_EQ(
      exact_lifetime_split(p, Joules{1.0}, Joules{1e9}, Meters{100.0}).value(),
      0.0);
}

TEST(LifetimeSolver, ZeroDistance) {
  const auto p = radio(1e-7, 1e-10, 2.0);
  EXPECT_DOUBLE_EQ(
      exact_lifetime_split(p, Joules{5.0}, Joules{7.0}, Meters{0.0}).value(),
      0.0);
}

TEST(LifetimeSolver, Validation) {
  const auto p = radio(1e-7, 1e-10, 2.0);
  EXPECT_THROW(
      exact_lifetime_split(p, Joules{1.0}, Joules{1.0}, Meters{-5.0}),
      std::invalid_argument);
  EXPECT_THROW(exact_lifetime_split(p, Joules{1.0}, Joules{1.0}, Meters{5.0},
                                    Meters{0.0}),
               std::invalid_argument);
}

TEST(LifetimeSolver, MonotoneInEnergyRatio) {
  const auto p = radio(1e-7, 1e-10, 2.0);
  double prev = -1.0;
  for (double e_prev = 1.0; e_prev <= 200.0; e_prev *= 1.5) {
    const double d =
        exact_lifetime_split(p, Joules{e_prev}, Joules{10.0}, Meters{300.0})
            .value();
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(LifetimeSolver, MatchesApproximationWhenElectronicsVanish) {
  // With a = 0, P(d) = b d^alpha and the paper's power-law approximation
  // with alpha' = alpha is exact — the solver must agree with it.
  const auto p = radio(0.0, 1e-10, 2.0);
  MaxLifetimeStrategy approx(2.0);
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double e_prev = rng.uniform(1.0, 50.0);
    const double e_self = rng.uniform(1.0, 50.0);
    const double total = rng.uniform(50.0, 300.0);
    const double exact =
        exact_lifetime_split(p, Joules{e_prev}, Joules{e_self}, Meters{total},
                             Meters{1e-9})
            .value();
    const double approx_d =
        approx.split_fraction(Joules{e_prev}, Joules{e_self}) * total;
    EXPECT_NEAR(exact, approx_d, 1e-4 * total);
  }
}

TEST(LifetimeSolver, DivergesFromApproximationWithElectronics) {
  // A nonzero electronics constant flattens P at short distances, so the
  // exact split must be more extreme than the approximation for lopsided
  // energies.
  const auto p = radio(5e-6, 1e-10, 2.0);
  MaxLifetimeStrategy approx(2.0);
  const double exact =
      exact_lifetime_split(p, Joules{40.0}, Joules{10.0}, Meters{200.0})
          .value();
  const double approx_d =
      approx.split_fraction(Joules{40.0}, Joules{10.0}) * 200.0;
  EXPECT_GT(exact, approx_d + 1.0);
}

TEST(ExactStrategy, NextPositionUsesSolver) {
  const auto p = radio(1e-7, 1e-10, 2.0);
  MaxLifetimeStrategy exact(p);
  EXPECT_TRUE(exact.exact());
  EXPECT_STREQ(exact.name(), "max-lifetime-exact");

  RelayContext ctx;
  ctx.prev_position = {0.0, 0.0};
  ctx.next_position = {200.0, 0.0};
  ctx.prev_energy = Joules{30.0};
  ctx.self_energy = Joules{10.0};
  const geom::Vec2 x = exact.next_position(ctx);
  const double ratio =
      power(p, x.x) / power(p, 200.0 - x.x);
  EXPECT_NEAR(ratio, 3.0, 1e-3);
}

TEST(ExactStrategy, ApproxStrategyReportsNotExact) {
  MaxLifetimeStrategy approx(2.0);
  EXPECT_FALSE(approx.exact());
  EXPECT_STREQ(approx.name(), "max-lifetime");
}

}  // namespace
}  // namespace imobif::core
